//! Table 3: thread interference. Four prioritized threads in Coupled mode
//! share a queue of 20 identical device evaluations; their statically
//! scheduled loops dilate at runtime according to priority, yet the
//! aggregate beats the single-threaded STS machine.

use crate::benchmarks::{model_queue_coupled, model_queue_sts};
use crate::report::{f2, Table};
use crate::runner::{run_benchmark, RunError, RunOutcome};
use crate::MachineMode;
use pc_isa::{ArbitrationPolicy, BranchOp, MachineConfig, OpKind, Program, SegmentId};

/// Per-thread measurement.
#[derive(Debug, Clone)]
pub struct ThreadRow {
    /// Report label ("STS" or "Coupled").
    pub mode: &'static str,
    /// 1-based worker number (priority order; 1 = highest).
    pub thread: usize,
    /// Static schedule length of the worker's loop body, in rows.
    pub compile_time_schedule: u32,
    /// Mean observed cycles between loop probes.
    pub runtime_cycles: f64,
    /// Devices the thread evaluated.
    pub devices: usize,
}

/// Results of the interference study.
#[derive(Debug, Clone)]
pub struct InterferenceResults {
    /// Per-thread rows, STS first.
    pub rows: Vec<ThreadRow>,
    /// Total cycles of the STS run.
    pub sts_total: u64,
    /// Total cycles of the Coupled run.
    pub coupled_total: u64,
}

impl InterferenceResults {
    /// Weighted average cycles per device evaluation in Coupled mode.
    pub fn coupled_weighted_avg(&self) -> f64 {
        let (mut num, mut den) = (0.0, 0usize);
        for r in self.rows.iter().filter(|r| r.mode == "Coupled") {
            num += r.runtime_cycles * r.devices as f64;
            den += r.devices;
        }
        if den == 0 {
            0.0
        } else {
            num / den as f64
        }
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 3 — interference: per-iteration schedule vs runtime (priority arbitration)",
            &[
                "Mode",
                "Thread",
                "Compile-Time Schedule",
                "Runtime Cycles",
                "Devices",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.mode.to_string(),
                r.thread.to_string(),
                r.compile_time_schedule.to_string(),
                f2(r.runtime_cycles),
                r.devices.to_string(),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "aggregate: Coupled {} cycles vs STS {} cycles; Coupled weighted avg {} cycles/device\n",
            self.coupled_total,
            self.sts_total,
            f2(self.coupled_weighted_avg()),
        ));
        s
    }
}

/// Longest backward-branch span in a segment — the static schedule length
/// of its (outermost) loop body.
fn loop_body_rows(program: &Program, seg: SegmentId) -> u32 {
    let seg = program.segment(seg);
    let mut best = 0;
    for (row, word) in seg.rows.iter().enumerate() {
        for (_, op) in word.slots() {
            if let OpKind::Branch(BranchOp::Jmp { target } | BranchOp::Br { target, .. }) = &op.kind
            {
                if (*target as usize) <= row {
                    best = best.max(row as u32 - target + 1);
                }
            }
        }
    }
    best
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Per-thread probe statistics of a run: `(thread id, mean interval,
/// count)` for worker threads, ordered by priority.
fn worker_probe_rows(out: &RunOutcome) -> Vec<(u32, f64, usize)> {
    let mut threads: Vec<u32> = out.stats.probes.iter().map(|p| p.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    threads
        .into_iter()
        .map(|t| {
            let intervals = out.stats.probe_intervals(t, 1);
            (t, mean(&intervals), out.stats.probe_count(t, 1))
        })
        .collect()
}

/// Runs the interference study.
///
/// # Errors
/// Propagates pipeline failures.
pub fn run() -> Result<InterferenceResults, RunError> {
    // STS comparison point: one thread, unrestricted clusters.
    let sts_bench = model_queue_sts();
    let sts = run_benchmark(&sts_bench, MachineMode::Sts, MachineConfig::baseline())?;

    // Coupled: four workers under fixed priority.
    let coupled_bench = model_queue_coupled();
    let config = MachineConfig::baseline().with_arbitration(ArbitrationPolicy::FixedPriority);
    // Recompile to find per-segment static schedules.
    let coupled = run_benchmark(&coupled_bench, MachineMode::Coupled, config)?;

    let mut rows = Vec::new();
    // STS row: static loop of the main segment.
    let sts_out = pc_compiler::compile(
        &sts_bench.seq_src,
        &MachineConfig::baseline(),
        MachineMode::Sts.schedule_mode(),
    )?;
    let sts_probes = worker_probe_rows(&sts);
    let (mut sts_rt, mut sts_devices) = (0.0, 20);
    if let Some(&(_, m, n)) = sts_probes.first() {
        sts_rt = m;
        sts_devices = n;
    }
    rows.push(ThreadRow {
        mode: "STS",
        thread: 1,
        compile_time_schedule: loop_body_rows(&sts_out.program, SegmentId(0)),
        runtime_cycles: sts_rt,
        devices: sts_devices,
    });

    // Coupled rows: workers are threads 1..=4 (spawn order = priority).
    let coupled_compile = pc_compiler::compile(
        &coupled_bench.threaded_src,
        &MachineConfig::baseline(),
        MachineMode::Coupled.schedule_mode(),
    )?;
    // Worker segments are the forall variants (ids 1..=k); report the
    // *shortest* variant's loop as the nominal compile-time schedule the
    // way the paper quotes one number per thread.
    for (i, (t, m, n)) in worker_probe_rows(&coupled).into_iter().enumerate() {
        let seg = coupled
            .stats
            .thread_spans
            .get(t as usize)
            .map(|_| SegmentId(i as u32 + 1))
            .unwrap_or(SegmentId(1));
        rows.push(ThreadRow {
            mode: "Coupled",
            thread: i + 1,
            compile_time_schedule: loop_body_rows(&coupled_compile.program, seg),
            runtime_cycles: m,
            devices: n,
        });
    }

    Ok(InterferenceResults {
        rows,
        sts_total: sts.stats.cycles,
        coupled_total: coupled.stats.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_reproduces_paper_shape() {
        let r = run().unwrap();
        // One STS row + four worker rows.
        assert_eq!(r.rows.len(), 5);
        let workers: Vec<&ThreadRow> = r.rows.iter().filter(|x| x.mode == "Coupled").collect();
        assert_eq!(workers.len(), 4);
        // All 20 devices evaluated, split across workers.
        let total: usize = workers.iter().map(|w| w.devices).sum();
        assert_eq!(total, 20);
        // Higher-priority threads evaluate at least as many devices.
        for pair in workers.windows(2) {
            assert!(
                pair[0].devices >= pair[1].devices,
                "priority order violated: {:?}",
                workers
            );
        }
        // Runtime dilates beyond the static schedule for every worker.
        for w in &workers {
            assert!(
                w.runtime_cycles + 1e-9 >= w.compile_time_schedule as f64,
                "thread {} runs faster than its schedule",
                w.thread
            );
        }
        // Aggregate: Coupled finishes the 20 evaluations faster than STS.
        assert!(
            r.coupled_total < r.sts_total,
            "coupled {} vs sts {}",
            r.coupled_total,
            r.sts_total
        );
        let rendered = r.render();
        assert!(rendered.contains("Coupled"));
    }
}
