//! simcore — throughput baseline for the simulator hot loop and the
//! parallel sweep driver.
//!
//! Times (a) the **simulation phase** — machine construction on a
//! shared decoded image, input setup, and the cycle loop — for the
//! full benchmark × machine mode cross-product. Compilation *and*
//! decode happen once per case outside the timed region: the compiler
//! has its own bench (`toolchain_perf`), and decode is load-time work
//! by design (`DecodedProgram` is built when a program is loaded and
//! shared across every run of it, exactly as the sweep engine and the
//! timed loop here use it). Coupled mode additionally gets one row per
//! oracle engine (`event`, `scan`) so the decoded backend's margin is
//! itself regression-gated. Also times (b) the full Table-2 grid
//! through the sweep engine — serial vs parallel wall-clock, per-shard
//! wall-clock, and cold/warm cache hit/miss counts, asserting every
//! path produces bit-identical rows. Results are written to
//! `BENCH_simcore.json` (schema v4: each case records the `engine`
//! that produced it) at the workspace root so future changes can be
//! compared against the committed baseline:
//!
//! ```sh
//! cargo bench -p pc-bench --bench simcore
//! git diff BENCH_simcore.json   # the trajectory
//! ```

use coupling::sweep::{run_sweep, SweepOptions, SweepSpec, SweepSummary};
use coupling::{benchmarks, default_jobs, run_benchmark, MachineMode};
use criterion::{criterion_group, criterion_main, Criterion};
use pc_isa::MachineConfig;
use pc_sim::{DecodedProgram, EngineKind, Machine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the machine-readable baseline lands: the workspace root.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simcore.json");

/// Cycle budget per simulation (far above any benchmark's real length).
const CYCLE_LIMIT: u64 = 20_000_000;

fn bench(c: &mut Criterion) {
    // CI smoke mode (PC_BENCH_QUICK=1): shrink the statistical budget so
    // the whole target takes seconds; the perf gate allows 25% noise.
    let quick = pc_bench::quick_mode();
    let (samples, measure, warmup, sweep_reps) = if quick {
        (3, Duration::from_millis(250), Duration::from_millis(50), 1)
    } else {
        (
            pc_bench::SAMPLES,
            Duration::from_secs(2),
            Duration::from_millis(300),
            3,
        )
    };

    // (a) Hot-loop throughput: the full benchmark × mode cross-product.
    // Each case compiles and decodes once, then every timed iteration
    // builds a machine on the shared decoded image, sets up inputs, and
    // runs — the simulation phase the `sim_cycles_per_sec` metric
    // describes. One validated pipeline run up front pins the cycle
    // count (simulation is deterministic) and keeps the numerics
    // honest. Per case: `(id, cycles, engine)`.
    let mut cycles_per_case: Vec<(String, u64, &'static str)> = Vec::new();
    {
        let mut g = c.benchmark_group("simcore");
        g.sample_size(samples)
            .measurement_time(measure)
            .warm_up_time(warmup);
        for b in benchmarks::all() {
            for mode in MachineMode::all() {
                let Some(src) = b.source(mode) else { continue };
                let config = MachineConfig::baseline();
                let out = run_benchmark(&b, mode, config.clone()).expect("validated run");
                let compiled =
                    pc_compiler::compile(src, &config, mode.schedule_mode()).expect("compile");
                let code = Arc::new(
                    DecodedProgram::decode(config, Arc::new(compiled.program)).expect("decode"),
                );
                let id = format!("{}/{}", b.name, mode.label());
                cycles_per_case.push((
                    format!("simcore/{id}"),
                    out.stats.cycles,
                    EngineKind::Decoded.name(),
                ));
                g.bench_function(&id, |bench| {
                    bench.iter(|| {
                        let mut m = Machine::from_decoded(Arc::clone(&code)).unwrap();
                        (b.setup)(&mut m).unwrap();
                        m.run(CYCLE_LIMIT).unwrap()
                    })
                });
                // Cross-engine rows: the oracle engines on the mode the
                // decoded backend was built to accelerate. Their ids end
                // with the engine name, so `/Coupled` floors don't catch
                // them.
                if mode == MachineMode::Coupled {
                    for engine in [EngineKind::Event, EngineKind::Scan] {
                        let eid = format!("{id}/{}", engine.name());
                        cycles_per_case.push((
                            format!("simcore/{eid}"),
                            out.stats.cycles,
                            engine.name(),
                        ));
                        g.bench_function(&eid, |bench| {
                            bench.iter(|| {
                                let mut m = Machine::from_decoded(Arc::clone(&code)).unwrap();
                                m.set_engine(engine);
                                (b.setup)(&mut m).unwrap();
                                m.run(CYCLE_LIMIT).unwrap()
                            })
                        });
                    }
                }
            }
        }
        // Traced-vs-untraced pair: Matrix/Coupled with stall profiling on.
        // Compare against the plain Matrix/Coupled case above to see the
        // cost of observation; the untraced number is what the gate
        // protects (tracing off must stay free).
        {
            let b = benchmarks::matrix();
            let mode = MachineMode::Coupled;
            let config = MachineConfig::baseline();
            let out = run_benchmark(&b, mode, config.clone()).expect("validated run");
            let compiled =
                pc_compiler::compile(b.source(mode).unwrap(), &config, mode.schedule_mode())
                    .expect("compile");
            let code = Arc::new(
                DecodedProgram::decode(config, Arc::new(compiled.program)).expect("decode"),
            );
            cycles_per_case.push((
                "simcore/Matrix/Coupled/profiled".to_string(),
                out.stats.cycles,
                EngineKind::Decoded.name(),
            ));
            g.bench_function("Matrix/Coupled/profiled", |bench| {
                bench.iter(|| {
                    let mut m = Machine::from_decoded(Arc::clone(&code)).unwrap();
                    m.enable_profiling();
                    (b.setup)(&mut m).unwrap();
                    m.run(CYCLE_LIMIT).unwrap()
                })
            });
        }
        g.finish();
    }

    // (b) Full Table-2 grid through the sweep engine, recording what it
    // actually did: jobs used, serial vs parallel wall-clock (best of
    // N), wall-clock and cache traffic per shard, and the cold/warm
    // hit/miss counts of the result cache. On a single-CPU host
    // `jobs == 1` *is* the serial path, so no parallel run is staged
    // and no fictitious "speedup" is recorded.
    let spec = SweepSpec::table2();
    let canonical = |s: &SweepSummary| -> Vec<(String, String)> {
        s.rows
            .iter()
            .map(|r| (r.cell.id(), coupling::sweep::codec::stats_to_json(&r.stats)))
            .collect()
    };
    let time_sweep = |opts: &SweepOptions| {
        let mut best = Duration::MAX;
        let mut result = None;
        for _ in 0..sweep_reps {
            let start = Instant::now();
            let r = run_sweep(&spec, opts).expect("table2 sweep");
            best = best.min(start.elapsed());
            result = Some(r);
        }
        (best, result.expect("at least one sweep ran"))
    };
    let jobs = default_jobs();
    let (serial_time, serial_run) = time_sweep(&SweepOptions {
        jobs: 1,
        ..SweepOptions::default()
    });
    let cells = serial_run.total_cells;
    let parallel_part = if jobs <= 1 {
        eprintln!("table2 sweep: serial {serial_time:.2?} (single-CPU host, no parallel run)");
        String::new()
    } else {
        let (parallel_time, parallel_run) = time_sweep(&SweepOptions {
            jobs,
            ..SweepOptions::default()
        });
        assert_eq!(
            canonical(&serial_run),
            canonical(&parallel_run),
            "parallel sweep must be bit-identical to serial"
        );
        let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
        eprintln!(
            "table2 sweep: serial {serial_time:.2?}, parallel {parallel_time:.2?} \
             ({jobs} jobs) -> {speedup:.2}x, rows bit-identical"
        );
        format!(
            "    \"parallel_ms\": {:.1},\n    \"speedup\": {:.2},\n    \
             \"bit_identical\": true,\n",
            parallel_time.as_secs_f64() * 1e3,
            speedup,
        )
    };
    // Sharded cold pass into a fresh cache, then a warm full pass over
    // it: the recorded numbers are the determinism gate's ground truth.
    let cache_dir = std::env::temp_dir().join(format!("pc-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut shard_lines = Vec::new();
    for k in 1..=2usize {
        let start = Instant::now();
        let run = run_sweep(
            &spec,
            &SweepOptions {
                jobs,
                cache_dir: Some(cache_dir.clone()),
                shard: Some((k, 2)),
                ..SweepOptions::default()
            },
        )
        .expect("sharded sweep");
        shard_lines.push(format!(
            "      {{\"shard\": \"{k}/2\", \"wall_ms\": {:.1}, \"hits\": {}, \"misses\": {}}}",
            start.elapsed().as_secs_f64() * 1e3,
            run.hits,
            run.misses,
        ));
    }
    let cold: (usize, usize) = (0, cells); // the shards above ran cold
    let warm_run = run_sweep(
        &spec,
        &SweepOptions {
            jobs,
            cache_dir: Some(cache_dir.clone()),
            ..SweepOptions::default()
        },
    )
    .expect("warm sweep");
    assert_eq!(
        warm_run.misses, 0,
        "warm rerun over the shard-filled cache must be 100% hits"
    );
    assert_eq!(
        canonical(&serial_run),
        canonical(&warm_run),
        "cached rows must be bit-identical to fresh serial rows"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    eprintln!(
        "table2 sweep: warm pass {} hits / {} misses over {} cells",
        warm_run.hits, warm_run.misses, cells
    );
    let sweep_json = format!(
        "{{\n    \"jobs\": {jobs},\n    \"cells\": {cells},\n    \
         \"serial_ms\": {:.1},\n{parallel_part}    \"shards\": [\n{}\n    ],\n    \
         \"cold\": {{\"hits\": {}, \"misses\": {}}},\n    \
         \"warm\": {{\"hits\": {}, \"misses\": {}}}\n  }}",
        serial_time.as_secs_f64() * 1e3,
        shard_lines.join(",\n"),
        cold.0,
        cold.1,
        warm_run.hits,
        warm_run.misses,
    );

    // (c) Machine-readable baseline.
    let mut cases = String::new();
    for r in c.results() {
        let (cycles, engine) = cycles_per_case
            .iter()
            .find(|(id, _, _)| *id == r.id)
            .map(|&(_, c, e)| (c, e))
            .unwrap_or((0, "decoded"));
        let mean_ns = r.mean.as_nanos();
        let cps = if mean_ns == 0 {
            0.0
        } else {
            cycles as f64 * 1e9 / mean_ns as f64
        };
        if !cases.is_empty() {
            cases.push_str(",\n");
        }
        cases.push_str(&format!(
            "    {{\"id\": \"{}\", \"engine\": \"{engine}\", \"mean_ns\": {}, \
             \"iterations\": {}, \"cycles_per_run\": {}, \"sim_cycles_per_sec\": {:.0}}}",
            r.id, mean_ns, r.iterations, cycles, cps
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"simcore-baseline-v4\",\n  \"host_cpus\": {},\n  \
         \"cases\": [\n{}\n  ],\n  \"table2_sweep\": {}\n}}\n",
        default_jobs(),
        cases,
        sweep_json,
    );
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_simcore.json");
    eprintln!("wrote {BASELINE_PATH}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
