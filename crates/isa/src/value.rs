//! Machine values: 64-bit integers and 64-bit floats in a unified register
//! space (the paper keeps integers and floating point numbers in the same
//! register files).

use crate::error::{IsaError, Result};
use std::fmt;

/// A value held in a register or memory word.
///
/// The simulated machine is word-oriented: every register and every memory
/// location holds one `Value`. Addresses are plain integers.
///
/// ```
/// use pc_isa::Value;
/// let v = Value::Int(3);
/// assert_eq!(v.as_int().unwrap(), 3);
/// assert!(Value::Float(1.5).as_int().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for addresses and booleans).
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
}

impl Value {
    /// The canonical `true` value produced by comparison operations.
    pub const TRUE: Value = Value::Int(1);
    /// The canonical `false` value produced by comparison operations.
    pub const FALSE: Value = Value::Int(0);

    /// Returns the integer payload.
    ///
    /// # Errors
    /// Returns [`IsaError::TypeMismatch`] if the value is a float.
    pub fn as_int(self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(i),
            Value::Float(_) => Err(IsaError::TypeMismatch {
                expected: "int",
                found: "float",
            }),
        }
    }

    /// Returns the float payload.
    ///
    /// # Errors
    /// Returns [`IsaError::TypeMismatch`] if the value is an integer.
    pub fn as_float(self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(f),
            Value::Int(_) => Err(IsaError::TypeMismatch {
                expected: "float",
                found: "int",
            }),
        }
    }

    /// Interprets the value as a branch condition: integers are true when
    /// nonzero; floats are rejected (conditions are always integer-typed).
    ///
    /// # Errors
    /// Returns [`IsaError::TypeMismatch`] for float values.
    pub fn as_cond(self) -> Result<bool> {
        Ok(self.as_int()? != 0)
    }

    /// True if this is an [`Value::Int`].
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// True if this is a [`Value::Float`].
    pub fn is_float(self) -> bool {
        matches!(self, Value::Float(_))
    }

    /// Bitwise equality usable as a total equivalence (treats NaN as equal
    /// to itself), used by tests and the assembler round-trip.
    pub fn bit_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Int(7).is_int());
        assert!(!Value::Int(7).is_float());
        assert!(Value::Int(7).as_float().is_err());
    }

    #[test]
    fn float_accessors() {
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Value::Float(2.5).is_float());
        assert!(Value::Float(2.5).as_int().is_err());
    }

    #[test]
    fn conditions_are_integers() {
        assert!(Value::Int(3).as_cond().unwrap());
        assert!(!Value::Int(0).as_cond().unwrap());
        assert!(Value::Float(1.0).as_cond().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::from(false), Value::Int(0));
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(4.0f64), Value::Float(4.0));
    }

    #[test]
    fn bit_eq_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert!(nan.bit_eq(nan));
        assert!(!nan.bit_eq(Value::Float(0.0)));
        assert!(!Value::Int(0).bit_eq(Value::Float(0.0)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
    }

    #[test]
    fn default_is_int_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }
}
