//! Property tests for source provenance through the optimizer: random
//! structured programs are lowered, then run through arbitrary sequences
//! of optimization passes. After **every** pass, (1) no surviving IR
//! operation may have an empty provenance set — merges (CSE, copy
//! coalescing) must union span sets, never drop them — and (2) every
//! provenance id must still index the interned span table, i.e. DCE
//! never orphans a span referenced by survivors (the table is
//! append-only precisely so deletion cannot invalidate ids). The full
//! compile must then produce a consistent, non-empty [`pc_isa::DebugMap`].

use pc_compiler::ir::Func;
use pc_compiler::{front, lower, opt, ScheduleMode};
use pc_isa::MachineConfig;
use proptest::prelude::*;

/// A statement of the tiny generated language (ints only, vars `x0..x3`,
/// one 8-element array).
#[derive(Debug, Clone)]
enum GStmt {
    Set(usize, GExpr),
    Store(GExpr, GExpr),
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    For(u8, Vec<GStmt>),
}

#[derive(Debug, Clone)]
enum GExpr {
    Const(i64),
    Var(usize),
    Load(Box<GExpr>),
    Add(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, Box<GExpr>),
    Lt(Box<GExpr>, Box<GExpr>),
}

fn gexpr(depth: u32) -> BoxedStrategy<GExpr> {
    let leaf = prop_oneof![
        (-9i64..9).prop_map(GExpr::Const),
        (0usize..4).prop_map(GExpr::Var),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Lt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| GExpr::Load(Box::new(a))),
        ]
    })
    .boxed()
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    let leaf = prop_oneof![
        (0usize..4, gexpr(2)).prop_map(|(v, e)| GStmt::Set(v, e)),
        (gexpr(1), gexpr(2)).prop_map(|(i, e)| GStmt::Store(i, e)),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (
                gexpr(1),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| GStmt::If(c, t, e)),
            (1u8..4, prop::collection::vec(inner, 1..3)).prop_map(|(k, b)| GStmt::For(k, b)),
        ]
    })
    .boxed()
}

fn render_expr(e: &GExpr, loops: usize) -> String {
    match e {
        GExpr::Const(c) => c.to_string(),
        GExpr::Var(v) => {
            if loops > 0 && *v % 2 == 1 {
                format!("l{}", v % loops)
            } else {
                format!("x{v}")
            }
        }
        GExpr::Load(i) => format!("(aref arr (and {} 7))", render_expr(i, loops)),
        GExpr::Add(a, b) => format!("(+ {} {})", render_expr(a, loops), render_expr(b, loops)),
        GExpr::Mul(a, b) => format!("(* {} {})", render_expr(a, loops), render_expr(b, loops)),
        GExpr::Lt(a, b) => format!("(< {} {})", render_expr(a, loops), render_expr(b, loops)),
    }
}

fn render_stmts(stmts: &[GStmt], loops: usize, out: &mut String) {
    for s in stmts {
        match s {
            GStmt::Set(v, e) => out.push_str(&format!("(set x{v} {}) ", render_expr(e, loops))),
            GStmt::Store(i, e) => out.push_str(&format!(
                "(aset arr (and {} 7) {}) ",
                render_expr(i, loops),
                render_expr(e, loops)
            )),
            GStmt::If(c, t, e) => {
                out.push_str(&format!("(if (!= {} 0) (begin ", render_expr(c, loops)));
                render_stmts(t, loops, out);
                out.push_str(") (begin ");
                render_stmts(e, loops, out);
                out.push_str(")) ");
            }
            GStmt::For(k, b) => {
                out.push_str(&format!("(for (l{loops} 0 {k}) "));
                render_stmts(b, loops + 1, out);
                out.push_str(") ");
            }
        }
    }
}

fn render_program(stmts: &[GStmt]) -> String {
    let mut body = String::new();
    render_stmts(stmts, 0, &mut body);
    format!(
        "(global arr (array int 8))
         (defun main ()
           (let ((x0 1) (x1 2) (x2 3) (x3 4))
             {body}
             (aset arr 0 (+ x0 (+ x1 (+ x2 x3))))))"
    )
}

/// One optimization pass, selected by index (proptest picks sequences).
fn apply_pass(f: &mut Func, which: u8) -> &'static str {
    match which % 6 {
        0 => {
            opt::fold_and_propagate(f);
            "fold_and_propagate"
        }
        1 => {
            opt::algebraic(f);
            "algebraic"
        }
        2 => {
            opt::cse(f);
            "cse"
        }
        3 => {
            opt::copy_propagate(f);
            "copy_propagate"
        }
        4 => {
            opt::coalesce_copies(f);
            "coalesce_copies"
        }
        _ => {
            opt::dce(f);
            "dce"
        }
    }
}

/// Asserts the two provenance invariants on every instruction of `f`.
fn assert_provenance(f: &Func, span_count: usize, ctx: &str) {
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            assert!(
                !inst.prov.is_empty(),
                "{ctx}: {}:b{bi}:i{ii} has empty provenance: {inst:?}",
                f.name
            );
            for &id in &inst.prov {
                assert!(
                    (id as usize) < span_count,
                    "{ctx}: {}:b{bi}:i{ii} references orphaned span {id} (table has {span_count})",
                    f.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_pass_drops_or_orphans_provenance(
        stmts in prop::collection::vec(gstmt(3), 1..5),
        passes in prop::collection::vec(0u8..6, 1..10),
        licm in any::<bool>(),
    ) {
        let src = render_program(&stmts);
        let module = front::expand(&src).expect("expands");
        let mut ir = lower::lower(&module, lower::LowerOptions { forall_variants: 4 })
            .expect("lowers");
        let span_count = ir.spans.len();
        for f in &ir.funcs {
            assert_provenance(f, span_count, "after lowering");
        }
        for f in &mut ir.funcs {
            for &p in &passes {
                let name = apply_pass(f, p);
                assert_provenance(f, span_count, name);
            }
            if licm {
                opt::licm(f);
                assert_provenance(f, span_count, "licm");
            }
        }
    }

    #[test]
    fn compiled_debug_map_is_consistent_and_total(
        stmts in prop::collection::vec(gstmt(2), 1..4),
        single in any::<bool>(),
    ) {
        let src = render_program(&stmts);
        let mode = if single { ScheduleMode::Single } else { ScheduleMode::Unrestricted };
        let out = pc_compiler::compile(&src, &MachineConfig::baseline(), mode)
            .expect("compiles");
        prop_assert!(out.debug.consistent());
        prop_assert!(!out.debug.is_empty(), "generated program lost all provenance");
        prop_assert_eq!(out.debug.segments.len(), out.program.segments.len());
        // Every annotated slot names a real (row, slot) of its segment.
        for (sd, seg) in out.debug.segments.iter().zip(&out.program.segments) {
            for (&(row, slot), ids) in &sd.slots {
                prop_assert!((row as usize) < seg.rows.len());
                prop_assert!((slot as usize) < seg.rows[row as usize].slots().len());
                prop_assert!(!ids.is_empty());
            }
        }
        // And the side table survives the assembly round trip intact.
        let text = pc_asm::print_program_with_debug(&out.program, &out.debug);
        let (p2, d2) = pc_asm::parse_program_with_debug(&text).expect("parses");
        prop_assert_eq!(&p2, &out.program);
        prop_assert_eq!(&d2, &out.debug);
        prop_assert_eq!(pc_asm::print_program_with_debug(&p2, &d2), text);
    }
}
