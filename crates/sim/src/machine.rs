//! The machine: owns threads, function-unit pipelines, the memory system
//! and the interconnect, and advances them cycle by cycle.

use crate::decode::{
    AddrOperand, DecBranch, DecSrc, DecodedProgram, FlatList, OrderRule, RegList, SlotAction,
};
use crate::error::SimError;
use crate::inline_vec::InlineVec;
use crate::probe::{Probe, ProbeEvent, StallCause};
use crate::regfile::RegFileSet;
use crate::stats::{ProbeRecord, RunStats, StallTable};
use crate::telemetry::{
    HostProfile, HostTelemetry, PH_ADVANCE, PH_ISSUE, PH_MEM, PH_PIPE, PH_SKIP, PH_WAKE,
    PH_WRITEBACK,
};
use crate::thread::{Thread, ThreadId, ThreadState};
use pc_isa::{
    op, ArbitrationPolicy, BranchOp, FuId, MachineConfig, MemOp, OpKind, Operation, Program, RegId,
    SegmentId, UnitClass, Value,
};
use pc_memsys::{MemCompletion, MemEvent, MemorySystem, RequestKind};
use pc_xconn::{Interconnect, PortDecision, WriteReq};
use std::collections::VecDeque;
use std::fmt;
use std::mem;
use std::sync::Arc;

/// Source values of an in-flight operation (every ALU/memory op has at
/// most three; only wide `fork` argument lists spill).
type ValList = InlineVec<Value, 4>;

/// Which issue/dispatch engine a [`Machine`] runs.
///
/// All three produce **bit-identical** simulated results — RunStats and
/// stall tables included — for every program (the differential tests pin
/// this); they differ only in host cost:
///
/// * [`EngineKind::Decoded`] (default): event-driven candidate discovery
///   plus decode-once dispatch — flat pre-resolved operands, jump-table
///   opcode tags, precomputed latencies ([`DecodedProgram`]).
/// * [`EngineKind::Event`]: the readiness-bitmask engine with
///   interpretive per-issue dispatch, kept as the first oracle.
/// * [`EngineKind::Scan`]: the original scan-every-cycle engine that
///   re-grades every thread × unit × slot from the program itself each
///   cycle — the ground-truth oracle. Also disables bulk idle skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Decode-once threaded-code dispatch (default).
    #[default]
    Decoded,
    /// Event-driven readiness cache with interpretive dispatch.
    Event,
    /// Scan-every-cycle reference engine.
    Scan,
}

impl EngineKind {
    /// Stable lowercase name (`decoded` / `event` / `scan`), as accepted
    /// by `pcsim --engine` and printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Decoded => "decoded",
            EngineKind::Event => "event",
            EngineKind::Scan => "scan",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "decoded" => Ok(EngineKind::Decoded),
            "event" => Ok(EngineKind::Event),
            "scan" => Ok(EngineKind::Scan),
            other => Err(format!(
                "unknown engine `{other}` (expected decoded, event, or scan)"
            )),
        }
    }
}

/// An operation in a function unit's execution pipeline.
///
/// The semantic work — operand gather, ALU evaluation, the branch
/// decision — happens at issue, where the operands were just read
/// anyway; the pipeline carries only the finished effect, so completion
/// applies it instead of re-deriving it, and the entries stay small for
/// the per-unit FIFOs.
#[derive(Debug, Clone)]
struct Exec {
    thread: ThreadId,
    /// The slot's index into [`DecodedProgram::ops`], carried so result
    /// retirement reaches the destination lists in one load instead of
    /// re-walking segment → row → slot.
    op: u32,
    /// The effect to apply at `done`.
    payload: ExecPayload,
    done: u64,
}

/// The precomputed effect of a pipeline entry.
#[derive(Debug, Clone)]
enum ExecPayload {
    /// An ALU result awaiting writeback.
    Result(Value),
    /// A decided control transfer (the branch condition was evaluated
    /// against the issue-time operand values; resolution order is
    /// unchanged because those values were latched at issue either way).
    Branch(Transfer),
    /// A `fork`: the spawn itself happens at completion, from the
    /// argument values gathered at issue. Boxed — forks are rare and
    /// wide, and an inline argument list would dominate every entry.
    Fork(Box<ForkPayload>),
}

/// A pending `fork`'s spawn arguments.
#[derive(Debug, Clone)]
struct ForkPayload {
    segment: SegmentId,
    arg_dsts: Arc<[RegId]>,
    vals: ValList,
}

/// A result waiting to retire into one or more register files.
///
/// Destinations are carried in both spellings: `dsts` feeds the
/// arbitrated path's interconnect requests (cluster routing) and
/// `dsts_flat` the register-file writes, index-aligned so removals keep
/// the two in lockstep. `remote` is the result's precomputed remote-write
/// count, so the uncontended path's grant accounting touches neither the
/// configuration nor the destination clusters.
#[derive(Debug, Clone)]
struct Writeback {
    thread: ThreadId,
    fu: FuId,
    dsts: RegList,
    dsts_flat: FlatList,
    remote: u8,
    value: Value,
    seq: u64,
}

/// A control transfer decided by a resolved branch, applied once the
/// branch's whole row has issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transfer {
    Halt,
    To(u32),
    FallThrough,
}

#[derive(Debug, Clone, Copy)]
struct MemToken {
    thread: ThreadId,
    fu: FuId,
    is_load: bool,
}

/// Slab of in-flight memory-reference tokens.
///
/// Slot indices double as the token ids handed to the memory system.
/// Freed slots are reused, which is safe because the memory system orders
/// completions by submission sequence — never by token id — and an id is
/// freed only once its completion retires, so live ids are always unique.
/// In steady state the slab reaches the peak number of concurrently
/// outstanding references and never allocates again.
#[derive(Debug, Default)]
struct TokenTable {
    slots: Vec<Option<(MemToken, u32)>>,
    free: Vec<u32>,
}

impl TokenTable {
    /// `op` indexes the reference's decoded slot — destinations and the
    /// remote-write count are read back from there at completion, so the
    /// slab stores a handle, not copies of the lists.
    fn insert(&mut self, tok: MemToken, op: u32) -> u64 {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none());
                self.slots[i as usize] = Some((tok, op));
                u64::from(i)
            }
            None => {
                self.slots.push(Some((tok, op)));
                (self.slots.len() - 1) as u64
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<(MemToken, u32)> {
        let entry = self.slots.get_mut(id as usize)?.take()?;
        self.free.push(id as u32);
        Some(entry)
    }

    fn get(&self, id: u64) -> Option<&(MemToken, u32)> {
        self.slots.get(id as usize)?.as_ref()
    }
}

/// Reusable per-cycle buffers for [`Machine::step`]'s phases. Each phase
/// takes its buffer, clears it, and puts it back, so after warm-up the
/// hot loop performs no heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    /// Phase A2: the cycle's memory completions.
    mem: Vec<MemCompletion>,
    /// Phase A3: `(queue, entry)` pairs ordered oldest-first.
    wb_order: Vec<(u32, u32)>,
    /// Phase A3: flattened write requests for the interconnect.
    wb_reqs: Vec<WriteReq>,
    /// Phase A3: `(queue, entry, dst)` origin of each write request.
    wb_origin: Vec<(u32, u32, u32)>,
    /// Phase A3: grant flags from the interconnect.
    wb_grants: Vec<bool>,
    /// Phase A3: origins of granted requests.
    wb_granted: Vec<(u32, u32, u32)>,
    /// Phase B: one unit's issue candidates.
    cand: Vec<(ThreadId, usize)>,
    /// Phase B (cached engines): per-unit candidate buckets filled by a
    /// single pass over the live threads.
    buckets: Vec<Vec<(ThreadId, u16)>>,
    /// Phases B/C: snapshot of live thread ids (spawn/halt mutate `live`).
    live: Vec<u32>,
    /// Phase B (lockstep): units claimed by already-issued rows.
    units: Vec<FuId>,
    /// Phase B (lockstep): one row's `(unit, slot)` pairs.
    slots: Vec<(FuId, u32)>,
}

/// How close an operation is to issuing — the single source of truth
/// shared by the issue logic ([`Machine::ready`]) and stall attribution,
/// so the profiler can never disagree with the machine about why a slot
/// waited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Readiness {
    /// All sources present, destinations unclaimed, ordering satisfied.
    Ready,
    /// A source operand is absent or a destination still has an
    /// in-flight writer.
    Operands,
    /// Blocked by a memory-ordering rule: a synchronizing fence, a
    /// same-address hazard, or the `fork` fence.
    MemOrder,
}

/// Observability state. Everything here is off by default; the hot loop
/// consults only the cached [`Obs::on`] flag, so an unobserved run pays
/// a single predicted branch per emission point and allocates nothing.
#[derive(Default)]
struct Obs {
    /// Legacy issue trace for the Figure 1/2 renderers.
    trace: Option<Vec<crate::trace::TraceEvent>>,
    /// Structured event sink.
    sink: Option<Box<dyn Probe>>,
    /// Fold stall attribution into [`RunStats::stalls`].
    profiling: bool,
    /// Cached `sink.is_some() || profiling`.
    on: bool,
    /// Stall accounting (populated when `profiling`). The per-slot
    /// breakdowns (`by_slot`, `issued_by_slot`) are kept in the dense
    /// arrays below during the run and folded in by [`Machine::stats`].
    stalls: StallTable,
    /// Per segment, per row: base index of that row's slots in the dense
    /// counter arrays (built by [`Machine::enable_profiling`]).
    slot_base: Vec<Vec<u32>>,
    /// Issued-operation counts per static slot, dense over the program.
    issued_dense: Vec<u64>,
    /// Stalled cycles per static slot × cause, dense over the program.
    stalled_dense: Vec<[u64; StallCause::COUNT]>,
    /// Per-unit: was the unit's most recent writeback denial for bus
    /// capacity (true) rather than a write port (false)?
    wb_denied_bus: Vec<bool>,
    /// Scratch: decisions from explained writeback arbitration.
    decisions: Vec<PortDecision>,
    /// Scratch: drained memory-system events.
    mem_events: Vec<MemEvent>,
}

impl Obs {
    fn new(n_units: usize) -> Self {
        Obs {
            wb_denied_bus: vec![false; n_units],
            ..Obs::default()
        }
    }

    fn refresh(&mut self) {
        self.on = self.sink.is_some() || self.profiling;
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("trace", &self.trace.as_ref().map(Vec::len))
            .field("sink", &self.sink.is_some())
            .field("profiling", &self.profiling)
            .finish_non_exhaustive()
    }
}

/// A processor-coupled node executing one [`Program`].
///
/// Construction validates the program against the configuration. Use
/// [`Machine::write_global`] / [`Machine::set_global_empty`] to set up
/// inputs, [`Machine::run`] to execute, and [`Machine::read_global`] to
/// extract results.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    program: Arc<Program>,
    /// The decode-once program representation every engine dispatches
    /// over; shared so repeated machines skip validation + translation.
    code: Arc<DecodedProgram>,
    /// Which issue/dispatch engine runs. Forced to [`EngineKind::Scan`]
    /// when the configuration has more than 64 units — the readiness
    /// cache is a u64 bitmask. See [`Machine::set_engine`].
    engine: EngineKind,
    threads: Vec<Thread>,
    /// Ids of non-halted threads, in spawn order (iteration hot path).
    live: Vec<u32>,
    transfers: Vec<Option<Transfer>>,
    mem: MemorySystem,
    xconn: Interconnect,
    /// Per-unit execution pipelines. A unit's latency is constant, so
    /// each pipe is strictly FIFO (one issue per unit per cycle, each
    /// due `latency` later): completions are a prefix pop, never a scan.
    pipes: Vec<VecDeque<Exec>>,
    /// Exact earliest `done` cycle per pipe (`u64::MAX` when empty):
    /// min-updated on push, recomputed when a pipe drains. Lets the
    /// completion phase skip pipes with nothing due without scanning.
    pipe_next: Vec<u64>,
    /// Global minimum over `pipe_next` — one compare decides whether the
    /// completion phase touches the pipes at all.
    next_pipe_due: u64,
    /// Total in-flight pipeline entries over all units (O(1) emptiness
    /// checks for `finished` / `pending_latency`).
    pipe_total: usize,
    wb_queues: Vec<Vec<Writeback>>,
    /// Total queued writebacks over all units (O(1) emptiness checks).
    wb_total: usize,
    /// Set whenever a thread may become eligible for a row advance or
    /// control transfer (its row fully issued, a transfer was applied to
    /// an empty row, or a thread spawned); phase C short-circuits to a
    /// no-op when clear. Conservative: spurious sets only cost one scan.
    advance_hint: bool,
    rr: Vec<u32>,
    tokens: TokenTable,
    scratch: Scratch,
    wb_seq: u64,
    cycle: u64,
    ops_issued: u64,
    busy_cycles: u64,
    peak_threads: usize,
    probes: Vec<ProbeRecord>,
    ops_by_unit: Vec<u64>,
    obs: Obs,
    /// Host-side phase timers / event counters
    /// ([`Machine::enable_host_telemetry`]); `None` costs one predicted
    /// branch per phase. Never touches simulated state, so telemetry-on
    /// runs are bit-identical to telemetry-off runs.
    host: Option<Box<HostTelemetry>>,
}

impl Machine {
    /// Builds a machine for `program` under `config`.
    ///
    /// # Errors
    /// Returns [`SimError::Isa`] when the program fails
    /// [`pc_isa::validate_program`].
    pub fn new(config: MachineConfig, program: Program) -> Result<Self, SimError> {
        Self::new_shared(config, Arc::new(program))
    }

    /// Like [`Machine::new`] but sharing an already-compiled program:
    /// repeated runs of the same code (benchmark iterations, sweep
    /// points) construct machines without cloning the program.
    ///
    /// # Errors
    /// Returns [`SimError::Isa`] when the program fails
    /// [`pc_isa::validate_program`].
    pub fn new_shared(config: MachineConfig, program: Arc<Program>) -> Result<Self, SimError> {
        let code = Arc::new(DecodedProgram::decode(config, program)?);
        Self::from_decoded(code)
    }

    /// Builds a machine from an already [decoded](DecodedProgram::decode)
    /// program, skipping validation and translation entirely — the
    /// cheapest way to construct machines in bulk (benchmark iterations,
    /// sweep points) over the same code.
    ///
    /// # Errors
    /// Returns [`SimError::ThreadLimit`] if the configuration admits no
    /// thread to run the entry segment.
    pub fn from_decoded(code: Arc<DecodedProgram>) -> Result<Self, SimError> {
        let config = code.config().clone();
        let program = Arc::clone(code.program());
        let n_units = config.units().len();
        let n_clusters = config.clusters().len();
        let mem = MemorySystem::new(config.memory, program.memory_size, config.seed);
        let xconn = Interconnect::new(config.interconnect, n_clusters);
        let mut m = Machine {
            config,
            program,
            code,
            engine: if n_units > 64 {
                EngineKind::Scan
            } else {
                EngineKind::default()
            },
            threads: Vec::new(),
            live: Vec::new(),
            transfers: Vec::new(),
            mem,
            xconn,
            pipes: vec![VecDeque::new(); n_units],
            pipe_next: vec![u64::MAX; n_units],
            next_pipe_due: u64::MAX,
            pipe_total: 0,
            wb_queues: vec![Vec::new(); n_units],
            wb_total: 0,
            advance_hint: true,
            rr: vec![0; n_units],
            tokens: TokenTable::default(),
            scratch: Scratch {
                buckets: vec![Vec::new(); n_units],
                ..Scratch::default()
            },
            wb_seq: 0,
            cycle: 0,
            ops_issued: 0,
            busy_cycles: 0,
            peak_threads: 0,
            probes: Vec::new(),
            ops_by_unit: vec![0; n_units],
            obs: Obs::new(n_units),
            host: None,
        };
        let entry = m.program.entry;
        m.spawn(entry, &[], &[])?;
        Ok(m)
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Writes `values` into the global named `name`, marking the words
    /// full.
    ///
    /// # Errors
    /// [`SimError::Isa`] if the symbol is unknown or `values` exceeds its
    /// extent; [`SimError::Mem`] on address errors.
    pub fn write_global(&mut self, name: &str, values: &[Value]) -> Result<(), SimError> {
        let sym = self.lookup(name)?;
        if values.len() as u64 > sym.1 {
            return Err(SimError::Isa(pc_isa::IsaError::Invalid(format!(
                "{} values exceed symbol {name} ({} words)",
                values.len(),
                sym.1
            ))));
        }
        for (i, v) in values.iter().enumerate() {
            self.mem.write_word(sym.0 + i as u64, *v)?;
        }
        Ok(())
    }

    /// Marks every word of global `name` empty (synchronization cells).
    ///
    /// # Errors
    /// [`SimError::Isa`] if the symbol is unknown.
    pub fn set_global_empty(&mut self, name: &str) -> Result<(), SimError> {
        let sym = self.lookup(name)?;
        self.mem.set_empty(sym.0, sym.1)?;
        Ok(())
    }

    /// Reads the full extent of global `name`.
    ///
    /// # Errors
    /// [`SimError::Isa`] if the symbol is unknown.
    pub fn read_global(&mut self, name: &str) -> Result<Vec<Value>, SimError> {
        let sym = self.lookup(name)?;
        let mut out = Vec::with_capacity(sym.1 as usize);
        for a in sym.0..sym.0 + sym.1 {
            out.push(self.mem.read_word(a)?);
        }
        Ok(out)
    }

    fn lookup(&self, name: &str) -> Result<(u64, u64), SimError> {
        self.program
            .symbol(name)
            .map(|s| (s.addr, s.len))
            .ok_or_else(|| {
                SimError::Isa(pc_isa::IsaError::Invalid(format!("unknown global {name}")))
            })
    }

    /// Direct access to the memory system (advanced inspection).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Selects the issue/dispatch engine. All engines simulate
    /// identically (see [`EngineKind`]); this only trades host cost for
    /// oracle independence. Configurations with more than 64 function
    /// units force [`EngineKind::Scan`] regardless of `kind` — the
    /// cached engines' readiness bitmask is a u64.
    pub fn set_engine(&mut self, kind: EngineKind) {
        self.engine = if self.config.units().len() > 64 {
            EngineKind::Scan
        } else {
            kind
        };
    }

    /// The engine currently selected (after any >64-unit clamping).
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Turns on host-side telemetry: sampled per-phase wall timers and
    /// exact event counters for the wake-repair machinery, readable via
    /// [`Machine::host_profile`] after (or during) a run. Purely
    /// host-side — the simulated schedule, stats, and stall tables are
    /// bit-identical with telemetry on or off.
    pub fn enable_host_telemetry(&mut self) {
        if self.host.is_none() {
            self.host = Some(Box::default());
        }
    }

    /// Snapshot of the host-side profile, or `None` unless
    /// [`Machine::enable_host_telemetry`] was called. `decode_ns` in the
    /// profile is the program's one-time decode cost, charged even when
    /// the decode predates this machine (shared [`DecodedProgram`]s).
    pub fn host_profile(&self) -> Option<HostProfile> {
        self.host.as_ref().map(|h| h.profile(self.code.decode_ns()))
    }

    /// Starts recording one [`crate::trace::TraceEvent`] per issued
    /// operation (for the Figure 1/2-style interleaving diagrams).
    pub fn enable_trace(&mut self) {
        self.obs.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded issue trace (empty unless [`Machine::enable_trace`]
    /// was called before running).
    pub fn trace(&self) -> &[crate::trace::TraceEvent] {
        self.obs.trace.as_deref().unwrap_or(&[])
    }

    /// Turns on stall attribution: every live thread's non-issuing
    /// cycles are charged to a [`StallCause`] and folded into
    /// [`RunStats::stalls`]. Observation never perturbs the simulated
    /// schedule — only the accounting differs from an unprofiled run.
    pub fn enable_profiling(&mut self) {
        self.obs.profiling = true;
        if self.obs.slot_base.is_empty() {
            // Lay the program's slots out flat so the hot loop records
            // issues and per-slot stalls with one array increment; the
            // BTreeMap form the stall table exposes is rebuilt from
            // these in `stats`.
            let mut total = 0u32;
            for seg in &self.program.segments {
                let mut bases = Vec::with_capacity(seg.rows.len());
                for row in &seg.rows {
                    bases.push(total);
                    total += row.len() as u32;
                }
                self.obs.slot_base.push(bases);
            }
            self.obs.issued_dense = vec![0; total as usize];
            self.obs.stalled_dense = vec![[0; StallCause::COUNT]; total as usize];
        }
        self.obs.refresh();
    }

    /// Attaches a [`Probe`] sink receiving the structured event stream
    /// (issues, stalls, writebacks, arbitration losses, memory events).
    /// Replaces any previous sink, finishing it first.
    pub fn attach_probe(&mut self, sink: Box<dyn Probe>) {
        if let Some(mut old) = self.obs.sink.take() {
            old.finish();
        }
        self.obs.sink = Some(sink);
        self.obs.refresh();
        self.mem.set_event_recording(true);
    }

    /// Detaches the current sink (calling its [`Probe::finish`]) and
    /// returns it, e.g. to inspect a [`crate::RingSink`]'s contents.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        let mut sink = self.obs.sink.take();
        if let Some(s) = &mut sink {
            s.finish();
        }
        self.obs.refresh();
        self.mem.set_event_recording(false);
        sink
    }

    /// Runs until every thread halts and all traffic drains, or `limit`
    /// cycles elapse.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when no progress is possible,
    /// [`SimError::CycleLimit`] past `limit`, or any runtime error.
    pub fn run(&mut self, limit: u64) -> Result<RunStats, SimError> {
        while !self.finished() {
            if self.cycle >= limit {
                return Err(SimError::CycleLimit { limit });
            }
            if !self.step()? {
                let t0 = self.host.as_mut().and_then(|h| h.timers.start(PH_SKIP));
                let before = self.cycle;
                self.skip_idle_span(limit);
                let skipped = self.cycle - before;
                if let Some(h) = self.host.as_mut() {
                    h.timers.stop(PH_SKIP, t0);
                    if skipped != 0 {
                        h.idle_spans_skipped += 1;
                        h.idle_cycles_skipped += skipped;
                    }
                }
            }
        }
        if let Some(sink) = &mut self.obs.sink {
            sink.finish();
        }
        Ok(self.stats())
    }

    fn finished(&self) -> bool {
        self.live.is_empty() && self.pipe_total == 0 && self.wb_total == 0 && self.mem.quiescent()
    }

    /// Snapshot of statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut stalls = self.obs.stalls.clone();
        // Fold the dense per-slot counters into the stall table's map
        // form, skipping slots that never issued or stalled.
        for (si, bases) in self.obs.slot_base.iter().enumerate() {
            for (ri, &base) in bases.iter().enumerate() {
                let n = self.program.segments[si].rows[ri].len();
                for s in 0..n {
                    let idx = base as usize + s;
                    let key = (si as u32, ri as u32, s as u16);
                    let issued = self.obs.issued_dense[idx];
                    if issued != 0 {
                        *stalls.issued_by_slot.entry(key).or_insert(0) += issued;
                    }
                    let by_cause = &self.obs.stalled_dense[idx];
                    if by_cause.iter().any(|&c| c != 0) {
                        let e = stalls.by_slot.entry(key).or_insert([0; StallCause::COUNT]);
                        for (d, &c) in e.iter_mut().zip(by_cause) {
                            *d += c;
                        }
                    }
                }
            }
        }
        RunStats {
            cycles: self.cycle,
            ops_issued: self.ops_issued,
            ops_by_class: {
                // Validation pins every slot's op class to its unit's
                // class, so the per-class counts are the per-unit counts
                // grouped by unit class — no hot-path map updates needed.
                let mut by_class = std::collections::BTreeMap::new();
                for (u, &n) in self.ops_by_unit.iter().enumerate() {
                    if n != 0 {
                        *by_class
                            .entry(self.config.fu(FuId(u as u16)).class)
                            .or_insert(0) += n;
                    }
                }
                by_class
            },
            ops_by_thread: self.threads.iter().map(|t| t.ops_issued).collect(),
            ops_by_unit: self.ops_by_unit.clone(),
            threads_spawned: self.threads.len(),
            probes: self.probes.clone(),
            thread_spans: self
                .threads
                .iter()
                .map(|t| (t.spawned_at, t.halted_at))
                .collect(),
            mem: self.mem.stats(),
            xconn: self.xconn.stats(),
            busy_cycles: self.busy_cycles,
            peak_threads: self.peak_threads,
            stalls,
        }
    }

    /// Spawns a thread on `segment`, installing `args` into `arg_dsts` of
    /// its fresh register set.
    fn spawn(
        &mut self,
        segment: SegmentId,
        args: &[Value],
        arg_dsts: &[RegId],
    ) -> Result<ThreadId, SimError> {
        let alive = self.live.len();
        if alive >= self.config.max_threads {
            return Err(SimError::ThreadLimit {
                max: self.config.max_threads,
            });
        }
        let id = ThreadId(self.threads.len() as u32);
        let seg = self.program.segment(segment);
        let regs = RegFileSet::new(&seg.regs_per_cluster, self.config.clusters().len());
        let mut t = Thread::new(id, segment, regs, self.cycle);
        for (v, d) in args.iter().zip(arg_dsts) {
            t.regs.install(*d, *v);
        }
        let n = seg.rows.first().map(|r| r.len()).unwrap_or(0);
        if seg.rows.is_empty() {
            t.halt(self.cycle);
        } else {
            t.enter_row(n);
            self.live.push(id.0);
        }
        self.threads.push(t);
        self.transfers.push(None);
        self.advance_hint = true;
        self.peak_threads = self.peak_threads.max(self.live.len());
        Ok(id)
    }

    /// Executes one cycle. Returns whether anything progressed (an op
    /// completed, retired, issued, or a thread advanced) — the bulk
    /// idle-skip in [`Machine::run`] keys off a `false` return.
    fn step(&mut self) -> Result<bool, SimError> {
        let now = self.cycle;
        let mut progress = false;
        if let Some(h) = self.host.as_mut() {
            h.steps += 1;
        }

        // ---- Phase A1: function-unit pipeline completions ----------------
        // One compare skips the whole phase on cycles with nothing due.
        if self.next_pipe_due <= now {
            let t0 = self.host.as_mut().and_then(|h| h.timers.start(PH_PIPE));
            for fu_idx in 0..self.pipes.len() {
                if self.pipe_next[fu_idx] > now {
                    continue;
                }
                // Constant per-unit latency makes the pipe FIFO in `done`:
                // the due entries are exactly the front prefix, popped off
                // without cloning or scanning the tail.
                loop {
                    match self.pipes[fu_idx].front() {
                        Some(e) if e.done <= now => {}
                        _ => break,
                    }
                    let e = self.pipes[fu_idx].pop_front().expect("front checked");
                    self.pipe_total -= 1;
                    progress = true;
                    self.complete_exec(FuId(fu_idx as u16), e)?;
                }
                self.pipe_next[fu_idx] = self.pipes[fu_idx].front().map_or(u64::MAX, |e| e.done);
            }
            // Exact once the drain settles; this cycle's issue phase
            // min-updates it again at each pipeline push.
            self.next_pipe_due = self.pipe_next.iter().copied().min().unwrap_or(u64::MAX);
            if let Some(h) = self.host.as_mut() {
                h.timers.stop(PH_PIPE, t0);
            }
        }

        // ---- Phase A2: memory-system completions --------------------------
        // One compare skips the phase on cycles with nothing due (parked
        // references only complete through a due reference's attempt).
        if self.mem.has_due(now) {
            let t0 = self.host.as_mut().and_then(|h| h.timers.start(PH_MEM));
            let mut completions = mem::take(&mut self.scratch.mem);
            self.mem.tick_into(now, &mut completions)?;
            for c in completions.drain(..) {
                progress = true;
                let Some((tok, op)) = self.tokens.remove(c.id) else {
                    return Err(SimError::UnknownToken { token: c.id });
                };
                let th = &mut self.threads[tok.thread.0 as usize];
                th.outstanding_mem.retain(|&(t, _, _)| t != c.id);
                // Draining outstanding traffic can unfence ordered slots.
                self.update_ready_after_mem_drain(tok.thread.0 as usize);
                if tok.is_load {
                    let Some(value) = c.value else {
                        return Err(SimError::MissingLoadValue { token: c.id });
                    };
                    self.retire_result(tok.thread, tok.fu, op, value);
                }
            }
            self.scratch.mem = completions;
            if let Some(h) = self.host.as_mut() {
                h.timers.stop(PH_MEM, t0);
            }
        }
        if self.obs.on {
            self.drain_mem_events(now);
        }

        // ---- Phase A3: writeback port/bus arbitration ---------------------
        let t0 = self
            .host
            .as_mut()
            .and_then(|h| h.timers.start(PH_WRITEBACK));
        progress |= self.retire_writebacks();
        if let Some(h) = self.host.as_mut() {
            h.timers.stop(PH_WRITEBACK, t0);
        }

        // ---- Phase B: issue ----------------------------------------------
        let t0 = self.host.as_mut().and_then(|h| h.timers.start(PH_ISSUE));
        let issued_any = self.issue_all(now)?;
        if let Some(h) = self.host.as_mut() {
            h.timers.stop(PH_ISSUE, t0);
        }
        progress |= issued_any;
        if issued_any {
            self.busy_cycles += 1;
        }

        // ---- Attribution (observing runs only): charge every live
        // thread's cycle to issue or a stall cause, after issue decided
        // and before row advance clobbers the row state it explains.
        if self.obs.on {
            self.attribute_cycle(now);
        }

        // ---- Phase C: row advance / control transfer ----------------------
        let t0 = self.host.as_mut().and_then(|h| h.timers.start(PH_ADVANCE));
        progress |= self.advance_threads(now)?;
        if let Some(h) = self.host.as_mut() {
            h.timers.stop(PH_ADVANCE, t0);
        }

        self.cycle = now + 1;

        if !progress && !self.finished() && !self.pending_latency() {
            return Err(SimError::Deadlock {
                cycle: now,
                alive: self.live.len(),
                parked: self.mem.parked_count(),
            });
        }
        Ok(progress)
    }

    /// After a no-progress cycle, jumps the clock straight to the next
    /// cycle where anything can happen — the earliest pipeline or
    /// memory-system completion.
    ///
    /// Only taken when every writeback queue is empty and no event sink
    /// is attached: the machine state is then frozen over the span (no
    /// completion, no retirement, and re-evaluating issue on identical
    /// inputs issues nothing — the opening cycle proved that), so each
    /// skipped cycle would have replayed the same non-event. Stall
    /// attribution is charged retroactively for the whole span with the
    /// causes the per-cycle engine would have recorded, preserving
    /// `alive == busy + Σcauses`. The jump is capped at `limit` so
    /// [`SimError::CycleLimit`] fires at the same cycle with the same
    /// attribution as under per-cycle stepping.
    fn skip_idle_span(&mut self, limit: u64) {
        if self.engine == EngineKind::Scan || self.obs.sink.is_some() {
            // The reference engine steps every cycle by definition, and
            // sinks receive per-cycle stall events.
            return;
        }
        if self.wb_total != 0 {
            // Queued writes may retire next cycle under a restricted
            // scheme; state is not frozen.
            return;
        }
        let next_pipe = (self.next_pipe_due != u64::MAX).then_some(self.next_pipe_due);
        let next = match (next_pipe, self.mem.next_ready_cycle()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) | (None, Some(a)) => a,
            // No future event: the step that opened the span either
            // already reported a deadlock or the machine is finished.
            (None, None) => return,
        };
        let target = next.min(limit);
        if target <= self.cycle {
            return;
        }
        let span = target - self.cycle;
        if self.obs.profiling {
            self.attribute_span(span);
        }
        self.cycle = target;
    }

    /// Retroactive stall attribution for a skipped idle span (profiled
    /// runs only): the state is frozen, so each thread's stall cause is
    /// identical on every cycle of the span and can be charged in one
    /// call. No thread issued on the cycle that opened the span, so
    /// every charge is a stall, never busy.
    fn attribute_span(&mut self, span: u64) {
        for idx in 0..self.live.len() {
            let ti = self.live[idx];
            let t = &self.threads[ti as usize];
            if t.state != ThreadState::Running {
                continue;
            }
            let (cause, class, at) = self.stall_reason(t);
            self.obs
                .stalls
                .record_stall_thread_n(ti, cause, class, span);
            match at {
                Some((seg, row, slot)) => {
                    let base = self.obs.slot_base[seg as usize][row as usize];
                    self.obs.stalled_dense[base as usize + slot as usize][cause.index()] += span;
                }
                None => self.obs.stalls.unattributed[cause.index()] += span,
            }
        }
    }

    /// True when latent in-flight work guarantees progress on a later
    /// cycle even though none occurred this cycle: memory references whose
    /// latency has not elapsed, operations still in unit pipelines, or
    /// results queued for write-port arbitration. Queued writebacks count
    /// — a cycle where every pending write loses arbitration makes no
    /// visible progress, yet those writes retire later, so reporting a
    /// deadlock there would be spurious.
    fn pending_latency(&self) -> bool {
        self.mem.in_flight_count() > 0 || self.pipe_total > 0 || self.wb_total > 0
    }

    /// Forwards the memory system's park/wake log to the sink as
    /// `SyncRetry` events (observing runs only).
    fn drain_mem_events(&mut self, now: u64) {
        let mut events = mem::take(&mut self.obs.mem_events);
        self.mem.drain_events_into(&mut events);
        if let Some(sink) = &mut self.obs.sink {
            for e in &events {
                let (id, addr, parked) = match e {
                    MemEvent::Parked { id, addr } => (*id, *addr, true),
                    MemEvent::Woken { id, addr, .. } => (*id, *addr, false),
                };
                // Parked references stay in the token table until their
                // completion retires, so the owner is still known.
                let thread = self
                    .tokens
                    .get(id)
                    .map(|(tok, ..)| tok.thread.0)
                    .unwrap_or(u32::MAX);
                sink.event(&ProbeEvent::SyncRetry {
                    cycle: now,
                    thread,
                    addr,
                    parked,
                });
            }
        }
        events.clear();
        self.obs.mem_events = events;
    }

    /// Charges each live running thread's cycle to issue or to a primary
    /// stall cause. Runs only when observing; the accounting invariant is
    /// `alive == busy + Σ by_cause` per thread (see
    /// [`crate::StallTable`]).
    fn attribute_cycle(&mut self, now: u64) {
        for idx in 0..self.live.len() {
            let ti = self.live[idx];
            let t = &self.threads[ti as usize];
            if t.state != ThreadState::Running {
                continue;
            }
            if t.last_issue == now {
                if self.obs.profiling {
                    self.obs.stalls.record_busy(ti);
                }
                continue;
            }
            let (cause, class, at) = self.stall_reason(t);
            if self.obs.profiling {
                self.obs.stalls.record_stall_thread(ti, cause, class);
                match at {
                    Some((seg, row, slot)) => {
                        let base = self.obs.slot_base[seg as usize][row as usize];
                        self.obs.stalled_dense[base as usize + slot as usize][cause.index()] += 1;
                    }
                    None => self.obs.stalls.unattributed[cause.index()] += 1,
                }
            }
            if let Some(sink) = &mut self.obs.sink {
                sink.event(&ProbeEvent::Stall {
                    cycle: now,
                    thread: ti,
                    cause,
                    class,
                    at,
                });
            }
        }
    }

    /// Primary stall cause for a thread that issued nothing this cycle,
    /// decided from the same [`Readiness`] the issue logic used. The
    /// third element is the blocked slot's static-code coordinate
    /// `(segment, row, slot)`, absent for control bubbles.
    fn stall_reason(&self, t: &Thread) -> (StallCause, Option<UnitClass>, Option<(u32, u32, u16)>) {
        let seg = self.program.segment(t.segment);
        let Some(row) = seg.rows.get(t.ip as usize) else {
            return (StallCause::EmptyRow, None, None);
        };
        // First ready-but-blocked slot and first unready slot, in row
        // order.
        let mut blocked: Option<(StallCause, UnitClass, u16)> = None;
        let mut unready: Option<(StallCause, UnitClass, u16)> = None;
        for (i, (fu, op)) in row.slots().iter().enumerate() {
            if t.issued.get(i).copied().unwrap_or(true) {
                continue;
            }
            let class = self.config.fu(*fu).class;
            match Self::readiness(t, op) {
                Readiness::Ready => {
                    // Data-ready but not issued: the unit was
                    // backpressured by its writeback buffer, or another
                    // thread won arbitration.
                    let cause = if self.wb_queues[fu.0 as usize].len() >= self.config.wb_buffer {
                        if self.obs.wb_denied_bus[fu.0 as usize] {
                            StallCause::BusFull
                        } else {
                            StallCause::WritePortFull
                        }
                    } else {
                        StallCause::LostArbitration
                    };
                    if blocked.is_none() {
                        blocked = Some((cause, class, i as u16));
                    }
                }
                Readiness::Operands => {
                    let cause = if self.operand_fed_by_memory(t, op) {
                        StallCause::MemoryBusy
                    } else {
                        StallCause::OperandNotPresent
                    };
                    if unready.is_none() {
                        unready = Some((cause, class, i as u16));
                    }
                }
                Readiness::MemOrder => {
                    if unready.is_none() {
                        unready = Some((StallCause::MemoryBusy, class, i as u16));
                    }
                }
            }
        }
        // Under slip a ready-but-blocked slot is the story (work existed
        // that could not be placed); under lockstep the whole row waits
        // on its unready slots, so those dominate.
        let primary = if self.config.lockstep_issue {
            unready.or(blocked)
        } else {
            blocked.or(unready)
        };
        match primary {
            Some((cause, class, slot)) => (cause, Some(class), Some((t.segment.0, t.ip, slot))),
            // Row fully issued: a control bubble awaiting branch
            // resolution.
            None => (StallCause::EmptyRow, None, None),
        }
    }

    /// True when an absent operand (or claimed destination) of `op` is
    /// fed by one of the thread's in-flight memory references — such a
    /// wait is the memory system's, not a plain data dependence.
    fn operand_fed_by_memory(&self, t: &Thread, op: &Operation) -> bool {
        let fed = |r: RegId| {
            t.outstanding_mem.iter().any(|&(tok, _, _)| {
                self.tokens
                    .get(tok)
                    .is_some_and(|&(_, op)| self.code.ops[op as usize].dsts.iter().any(|d| *d == r))
            })
        };
        op.src_regs().any(|r| !t.regs.is_present(r) && fed(r))
            || op.dsts.iter().any(|d| !t.regs.no_writers(*d) && fed(*d))
    }

    /// Applies a finished pipeline entry. The semantic work happened at
    /// issue ([`Machine::issue_one`] gathers operands, evaluates results,
    /// and takes branch decisions there); completion is the timing event
    /// that makes the effect architecturally visible — results enter
    /// writeback, transfers unblock their thread, forks spawn.
    fn complete_exec(&mut self, fu: FuId, e: Exec) -> Result<(), SimError> {
        match e.payload {
            ExecPayload::Result(v) => self.retire_result(e.thread, fu, e.op, v),
            ExecPayload::Branch(t) => self.finish_branch(e.thread, t),
            ExecPayload::Fork(f) => {
                self.spawn(f.segment, f.vals.as_slice(), &f.arg_dsts)?;
                self.finish_branch(e.thread, Transfer::FallThrough);
            }
        }
        Ok(())
    }

    /// Decides a branch's pipeline payload from its issue-time operand
    /// values, reading the program-spelled operation — the oracle
    /// engines' path.
    fn branch_payload(b: &BranchOp, vals: ValList) -> Result<ExecPayload, SimError> {
        Ok(match b {
            BranchOp::Halt => ExecPayload::Branch(Transfer::Halt),
            BranchOp::Jmp { target } => ExecPayload::Branch(Transfer::To(*target)),
            BranchOp::Br { on_true, target } => {
                ExecPayload::Branch(if vals[0].as_cond()? == *on_true {
                    Transfer::To(*target)
                } else {
                    Transfer::FallThrough
                })
            }
            BranchOp::Fork { segment, arg_dsts } => ExecPayload::Fork(Box::new(ForkPayload {
                segment: *segment,
                arg_dsts: arg_dsts.clone().into(),
                vals,
            })),
            BranchOp::Probe { .. } => unreachable!("probes complete at issue"),
        })
    }

    /// [`Self::branch_payload`] over the pre-decoded [`DecBranch`] — the
    /// decoded engine's path (the fork argument list is shared, so its
    /// clone is a pointer bump, not a copy).
    fn branch_payload_dec(b: &DecBranch, vals: ValList) -> Result<ExecPayload, SimError> {
        Ok(match b {
            DecBranch::Halt => ExecPayload::Branch(Transfer::Halt),
            DecBranch::Jmp(target) => ExecPayload::Branch(Transfer::To(*target)),
            DecBranch::Br { on_true, target } => {
                ExecPayload::Branch(if vals[0].as_cond()? == *on_true {
                    Transfer::To(*target)
                } else {
                    Transfer::FallThrough
                })
            }
            DecBranch::Fork { segment, arg_dsts } => ExecPayload::Fork(Box::new(ForkPayload {
                segment: *segment,
                arg_dsts: Arc::clone(arg_dsts),
                vals,
            })),
            DecBranch::None => unreachable!("non-branch slot issued as branch"),
        })
    }

    /// Shared tail of branch resolution: clears the pending flag, records
    /// the transfer, and takes the fully-issued fast path.
    fn finish_branch(&mut self, tid: ThreadId, transfer: Transfer) {
        let t = &mut self.threads[tid.0 as usize];
        t.branch_pending = false;
        self.transfers[tid.0 as usize] = Some(transfer);
        // Fast path: when the branch's row has fully issued by resolution
        // time, transfer control immediately so the target row can issue
        // this very cycle (a 1-cycle branch bubble instead of 2).
        if self.threads[tid.0 as usize].unissued == 0 {
            self.apply_transfer(tid.0 as usize, transfer, self.cycle);
        }
    }

    /// Applies a control transfer to thread `i` at cycle `now`. Row
    /// bounds and widths come off the decoded metadata — the per-advance
    /// path never dereferences the program.
    fn apply_transfer(&mut self, i: usize, transfer: Transfer, now: u64) {
        self.transfers[i] = None;
        let t = &mut self.threads[i];
        let seg_len = self.code.seg_len(t.segment);
        match transfer {
            Transfer::Halt => {
                t.halt(now);
                self.live.retain(|&id| id as usize != i);
            }
            Transfer::To(target) => {
                t.ip = target;
                let n = self
                    .code
                    .row(t.segment, target)
                    .expect("validated branch target")
                    .n_slots as usize;
                t.enter_row(n);
                if n == 0 {
                    // An empty row is eligible to advance again next cycle.
                    self.advance_hint = true;
                }
            }
            Transfer::FallThrough => {
                if t.ip + 1 >= seg_len {
                    t.halt(now);
                    self.live.retain(|&id| id as usize != i);
                } else {
                    t.ip += 1;
                    let n = self
                        .code
                        .row(t.segment, t.ip)
                        .expect("fall-through stays in range")
                        .n_slots as usize;
                    t.enter_row(n);
                    if n == 0 {
                        self.advance_hint = true;
                    }
                }
            }
        }
    }

    /// Retires an op's result by its decoded-slot handle: destination
    /// lists are read back from the slot record instead of being copied
    /// through the pipelines and the memory token slab. Applies the
    /// write directly when the interconnect is contention-free and
    /// unobserved (same argument as in [`Self::enqueue_writeback`]);
    /// otherwise clones the lists into a queued writeback.
    fn retire_result(&mut self, thread: ThreadId, fu: FuId, op: u32, value: Value) {
        let sm = &self.code.ops[op as usize];
        if sm.dsts_flat.is_empty() {
            return;
        }
        if !self.obs.on && self.xconn.contention_free() {
            let flats = sm.dsts_flat.clone();
            let remote = sm.wb_remote;
            self.xconn
                .record_uncontended_grants(flats.len() as u64, u64::from(remote));
            let ti = thread.0 as usize;
            if self.threads[ti].is_alive() {
                for di in (0..flats.len()).rev() {
                    let flat = flats[di];
                    self.threads[ti].regs.complete_write_at(flat, value);
                    self.update_ready_after_write(ti, flat);
                }
            }
            return;
        }
        let sm = &self.code.ops[op as usize];
        let (dsts, flats, remote) = (sm.dsts.clone(), sm.dsts_flat.clone(), sm.wb_remote);
        self.enqueue_writeback(thread, fu, dsts, flats, remote, value);
    }

    fn enqueue_writeback(
        &mut self,
        thread: ThreadId,
        fu: FuId,
        dsts: RegList,
        dsts_flat: FlatList,
        remote: u8,
        value: Value,
    ) {
        // A result with no destinations retires on the spot: queueing it
        // would occupy a writeback slot no arbitration round could drain.
        if dsts.is_empty() {
            return;
        }
        // Under a contention-free interconnect with no observer attached,
        // queueing is pure ceremony: everything enqueued this cycle fully
        // drains in this same cycle's retirement phase, the write-buffer
        // issue gate never fires (issue sees post-drain queues), and the
        // scoreboard's no-writers gate makes two same-cycle writebacks to
        // one register impossible — so applying the write on the spot is
        // order-insensitive and bit-identical, and skips the queue
        // entirely. Row changes between here and the retirement phase
        // cannot skew the dirty marking either: every control transfer
        // marks the thread dirty itself ([`Thread::enter_row`]), which
        // forces the same exact rebuild at the next issue phase.
        if !self.obs.on && self.xconn.contention_free() {
            self.xconn
                .record_uncontended_grants(dsts_flat.len() as u64, u64::from(remote));
            let ti = thread.0 as usize;
            if self.threads[ti].is_alive() {
                for di in (0..dsts_flat.len()).rev() {
                    let flat = dsts_flat[di];
                    self.threads[ti].regs.complete_write_at(flat, value);
                    self.update_ready_after_write(ti, flat);
                }
            }
            return;
        }
        let seq = self.wb_seq;
        self.wb_seq += 1;
        self.wb_total += 1;
        self.wb_queues[fu.0 as usize].push(Writeback {
            thread,
            fu,
            dsts,
            dsts_flat,
            remote,
            value,
            seq,
        });
    }

    /// Arbitrates pending register writes for ports/buses; returns whether
    /// any write retired.
    fn retire_writebacks(&mut self) -> bool {
        // The overwhelmingly common cycle has nothing queued: get out
        // before touching any scratch state.
        if self.wb_total == 0 {
            return false;
        }
        // A contention-free interconnect grants every request, so an
        // unobserved run can skip request flattening, sorting, and
        // arbitration wholesale. Observed runs keep the explained path
        // (its per-request decisions feed the sink and the denial
        // attribution) — both paths produce identical stats.
        if !self.obs.on && self.xconn.contention_free() {
            return self.retire_writebacks_uncontended();
        }
        // Gather (queue, entry) pairs oldest-first.
        let mut order = mem::take(&mut self.scratch.wb_order);
        order.clear();
        for (qi, q) in self.wb_queues.iter().enumerate() {
            for ei in 0..q.len() {
                order.push((qi as u32, ei as u32));
            }
        }
        order.sort_unstable_by_key(|&(qi, ei)| self.wb_queues[qi as usize][ei as usize].seq);

        let mut reqs = mem::take(&mut self.scratch.wb_reqs);
        let mut origin = mem::take(&mut self.scratch.wb_origin);
        reqs.clear();
        origin.clear();
        for &(qi, ei) in &order {
            let wb = &self.wb_queues[qi as usize][ei as usize];
            let src_cluster = self.config.fu(wb.fu).cluster;
            for (di, d) in wb.dsts.iter().enumerate() {
                reqs.push(WriteReq {
                    src_cluster,
                    dst_cluster: d.cluster,
                });
                origin.push((qi, ei, di as u32));
            }
        }
        let mut grants = mem::take(&mut self.scratch.wb_grants);
        if self.obs.on {
            // Explained arbitration takes the identical decisions (it
            // shares the plain path's decision function) but classifies
            // each denial, feeding BusFull/WritePortFull attribution and
            // the sink's denial events.
            let mut decisions = mem::take(&mut self.obs.decisions);
            self.xconn.arbitrate_explained_into(&reqs, &mut decisions);
            grants.clear();
            grants.extend(decisions.iter().map(|d| d.granted()));
            for (d, &(qi, _, _)) in decisions.iter().zip(&origin) {
                match d {
                    PortDecision::Granted => {}
                    PortDecision::DeniedPortFull => self.obs.wb_denied_bus[qi as usize] = false,
                    PortDecision::DeniedBusBusy => self.obs.wb_denied_bus[qi as usize] = true,
                }
            }
            if let Some(sink) = &mut self.obs.sink {
                let now = self.cycle;
                for (d, &(qi, ei, _)) in decisions.iter().zip(&origin) {
                    if d.granted() {
                        continue;
                    }
                    let wb = &self.wb_queues[qi as usize][ei as usize];
                    sink.event(&ProbeEvent::WbDenied {
                        cycle: now,
                        thread: wb.thread.0,
                        fu: wb.fu,
                        bus: *d == PortDecision::DeniedBusBusy,
                    });
                }
            }
            self.obs.decisions = decisions;
        } else {
            self.xconn.arbitrate_into(&reqs, &mut grants);
        }

        // Mark granted destinations (collect first to avoid double-borrow),
        // then remove them per queue entry with dst indices descending.
        let mut granted = mem::take(&mut self.scratch.wb_granted);
        granted.clear();
        for (g, o) in grants.iter().zip(&origin) {
            if *g {
                granted.push(*o);
            }
        }
        granted.sort_unstable_by_key(|a| (a.0, a.1, std::cmp::Reverse(a.2)));
        let mut any = false;
        for &(qi, ei, di) in &granted {
            let (thread, fu, value, flat) = {
                let wb = &mut self.wb_queues[qi as usize][ei as usize];
                wb.dsts.remove(di as usize);
                (wb.thread, wb.fu, wb.value, wb.dsts_flat.remove(di as usize))
            };
            any = true;
            if let Some(sink) = &mut self.obs.sink {
                sink.event(&ProbeEvent::Writeback {
                    cycle: self.cycle,
                    thread: thread.0,
                    fu,
                });
            }
            let t = &mut self.threads[thread.0 as usize];
            if t.is_alive() {
                t.regs.complete_write_at(flat, value);
                // Arriving data can make cached-unready slots ready.
                self.update_ready_after_write(thread.0 as usize, flat);
            }
        }
        for q in &mut self.wb_queues {
            q.retain(|wb| !wb.dsts.is_empty());
        }
        self.wb_total = self.wb_queues.iter().map(Vec::len).sum();
        self.scratch.wb_order = order;
        self.scratch.wb_reqs = reqs;
        self.scratch.wb_origin = origin;
        self.scratch.wb_grants = grants;
        self.scratch.wb_granted = granted;
        any
    }

    /// Writeback retirement under a contention-free interconnect: every
    /// request is granted, so apply the queued writes directly — in the
    /// same order as the arbitrated path: queue index, then entry, then
    /// destinations last-to-first (its grant application sorts by
    /// `(queue, entry, Reverse(dst))`) — with identical interconnect
    /// grant accounting.
    fn retire_writebacks_uncontended(&mut self) -> bool {
        let mut grants = 0u64;
        let mut remote = 0u64;
        for qi in 0..self.wb_queues.len() {
            if self.wb_queues[qi].is_empty() {
                continue;
            }
            let mut queue = mem::take(&mut self.wb_queues[qi]);
            for wb in queue.drain(..) {
                grants += wb.dsts_flat.len() as u64;
                remote += u64::from(wb.remote);
                let ti = wb.thread.0 as usize;
                if !self.threads[ti].is_alive() {
                    continue;
                }
                for di in (0..wb.dsts_flat.len()).rev() {
                    let flat = wb.dsts_flat[di];
                    self.threads[ti].regs.complete_write_at(flat, wb.value);
                    self.update_ready_after_write(ti, flat);
                }
            }
            // Hand the emptied buffer back so the queue keeps its
            // capacity across cycles.
            self.wb_queues[qi] = queue;
        }
        self.wb_total = 0;
        self.xconn.record_uncontended_grants(grants, remote);
        // Queued writebacks always carry at least one destination
        // (`enqueue_writeback` retires empty results on the spot), and
        // the caller checked the queues were not all empty, so at least
        // one write retired.
        true
    }

    /// Per-unit arbitration and issue. Returns whether any op issued.
    fn issue_all(&mut self, now: u64) -> Result<bool, SimError> {
        if self.config.lockstep_issue {
            return self.issue_all_lockstep(now);
        }
        match self.engine {
            EngineKind::Scan => self.issue_all_scan(now),
            EngineKind::Event => self.issue_all_cached::<false>(now),
            EngineKind::Decoded => self.issue_all_cached::<true>(now),
        }
    }

    /// Event-driven issue: each thread carries a cached per-unit
    /// readiness bitmask ([`Thread::ready_units`]), rebuilt lazily when
    /// an event marks it dirty (row entry, own issue, writeback into its
    /// registers, memory completion). Candidate sets, arbitration, and
    /// issue order are exactly those of [`Machine::issue_all_scan`] —
    /// candidates accumulate in live order and feed the same
    /// [`Machine::select`] — so the engines are bit-identical; only the
    /// cost of discovering candidates differs. `DECODED` selects the
    /// flat decoded dispatch inside [`Machine::issue_one`]; candidate
    /// discovery is shared.
    fn issue_all_cached<const DECODED: bool>(&mut self, now: u64) -> Result<bool, SimError> {
        let mut any = false;
        // One pass over the live threads repairs dirty caches, unions the
        // units with at least one ready slot, and distributes each
        // thread's ready slots into per-unit candidate buckets — visiting
        // threads in live (spawn) order, so every bucket holds its
        // candidates in exactly the order the reference engine's per-unit
        // rescan produces.
        // Buckets are left empty on exit (cleared below by `unit_mask`),
        // so entry skips the per-unit sweep entirely.
        let mut buckets = mem::take(&mut self.scratch.buckets);
        debug_assert!(buckets.iter().all(Vec::is_empty));
        let mut unit_mask = 0u64;
        for li in 0..self.live.len() {
            let ti = self.live[li] as usize;
            if self.threads[ti].ready_dirty {
                self.refresh_ready(ti);
            }
            let t = &self.threads[ti];
            let mut m = t.ready_units;
            if m == 0 {
                continue;
            }
            unit_mask |= m;
            // A set readiness bit implies a current row exists.
            let row = self.code.row(t.segment, t.ip).expect("ready bit, no row");
            let slot_of_unit = self.code.slot_of_unit(row);
            while m != 0 {
                let u = m.trailing_zeros() as usize;
                m &= m - 1;
                buckets[u].push((t.id, slot_of_unit[u]));
            }
        }
        // Units outside `unit_mask` have no candidates: the reference
        // engine skips them without touching arbitration state, so the
        // cached engines may too. Within one cycle's issue phase a
        // thread's readiness only ever *shrinks* (its own issues claim
        // registers and add outstanding traffic; nothing completes
        // mid-phase), and every issue repairs its thread's cache in place
        // ([`Machine::update_ready_after_issue`]), so each bucket is a
        // superset of the unit's candidates at its turn: re-checking the
        // (exact) bitmask bit filters out entries stale by an earlier
        // issue this phase.
        let mut candidates = mem::take(&mut self.scratch.cand);
        let mut m = unit_mask;
        while m != 0 {
            let fu_idx = m.trailing_zeros() as usize;
            m &= m - 1;
            let fu = FuId(fu_idx as u16);
            // Results denied a write port wait in a small per-unit buffer;
            // the unit stalls only when that buffer fills (the paper's
            // restricted schemes cost ~4% — whole-unit stalls on any
            // pending write would be far harsher than its model).
            if self.wb_queues[fu_idx].len() >= self.config.wb_buffer {
                continue;
            }
            let bit = 1u64 << fu_idx;
            candidates.clear();
            for &(tid, slot) in &buckets[fu_idx] {
                if self.threads[tid.0 as usize].ready_units & bit != 0 {
                    candidates.push((tid, slot as usize));
                }
            }
            let Some(&(tid, slot_idx)) = self.select(fu, &candidates) else {
                continue;
            };
            if let Some(sink) = &mut self.obs.sink {
                for &(loser, _) in candidates.iter().filter(|(c, _)| *c != tid) {
                    sink.event(&ProbeEvent::ArbLoss {
                        cycle: now,
                        thread: loser.0,
                        fu,
                    });
                }
            }
            self.issue_one::<DECODED>(now, fu, tid, slot_idx)?;
            any = true;
        }
        // Leave every touched bucket empty for the next cycle (exactly
        // the `unit_mask` units were filled; the rest never changed).
        let mut m = unit_mask;
        while m != 0 {
            let u = m.trailing_zeros() as usize;
            m &= m - 1;
            buckets[u].clear();
        }
        self.scratch.cand = candidates;
        self.scratch.buckets = buckets;
        Ok(any)
    }

    /// Rebuilds a thread's per-unit readiness bitmask from its current
    /// row: packed operand masks decide the data check, and only slots
    /// with memory-ordering rules fall back to the full
    /// [`Machine::readiness`] grading.
    fn refresh_ready(&mut self, ti: usize) {
        let t0 = self.host.as_mut().and_then(|h| {
            h.bitmask_rebuilds += 1;
            h.timers.start(PH_WAKE)
        });
        let t = &self.threads[ti];
        let mut mask = 0u64;
        if t.state == ThreadState::Running {
            if let Some(row) = self.code.row(t.segment, t.ip) {
                let slots = self.code.slots(row);
                if row.two_word {
                    // Fast grade: the whole row's operand masks live in
                    // bit words 0 and 1, loaded once for the walk.
                    let (p0, p1, w0, w1) = t.regs.words01();
                    for (sm, &issued) in slots.iter().zip(&t.issued) {
                        if issued
                            || (p0 & sm.src01[0]) != sm.src01[0]
                            || (p1 & sm.src01[1]) != sm.src01[1]
                            || (w0 & sm.dst01[0]) != 0
                            || (w1 & sm.dst01[1]) != 0
                            || (sm.has_order && !Self::order_ok(t, &sm.order))
                        {
                            continue;
                        }
                        mask |= 1u64 << sm.fu.0;
                    }
                } else {
                    for (sm, &issued) in slots.iter().zip(&t.issued) {
                        if issued
                            || !t.regs.masks_ready(&sm.src, &sm.dst)
                            || (sm.has_order && !Self::order_ok(t, &sm.order))
                        {
                            continue;
                        }
                        mask |= 1u64 << sm.fu.0;
                    }
                }
            }
        }
        let t = &mut self.threads[ti];
        t.ready_units = mask;
        t.ready_dirty = false;
        if let Some(h) = self.host.as_mut() {
            h.timers.stop(PH_WAKE, t0);
        }
    }

    /// Invalidates a clean readiness cache after the register at flat
    /// index `bit` of thread `ti` was written — but only when it can
    /// actually change a grade: the row-level touch union rejects
    /// writebacks landing registers consumed by *later* rows without
    /// walking the slots. A hit marks the cache dirty rather than
    /// repairing in place, so a burst of same-cycle writebacks costs one
    /// [`Machine::refresh_ready`] at the next issue phase instead of one
    /// row walk per destination. (The scan and lockstep engines never
    /// clean their caches, so they are unaffected.)
    fn update_ready_after_write(&mut self, ti: usize, bit: u32) {
        if let Some(h) = self.host.as_mut() {
            h.wake_repairs += 1;
        }
        let t = &self.threads[ti];
        if t.ready_dirty || t.state != ThreadState::Running {
            return;
        }
        let Some(row) = self.code.row(t.segment, t.ip) else {
            return;
        };
        let key = bit / 64;
        let m = 1u64 << (bit % 64);
        let hit = if key < 2 {
            row.touch01[key as usize] & m != 0
        } else {
            row.touch_union.iter().any(|&(k, w)| k == key && w & m != 0)
        };
        if hit {
            self.threads[ti].ready_dirty = true;
        }
    }

    /// Targeted repair of a clean readiness cache after some of thread
    /// `ti`'s outstanding memory traffic drained: register state is
    /// untouched, so only order-ruled slots can change grade — and only
    /// from unready to ready (draining relaxes every [`OrderRule`]), so
    /// set bits are kept and only absent ordered bits are re-graded.
    fn update_ready_after_mem_drain(&mut self, ti: usize) {
        if let Some(h) = self.host.as_mut() {
            h.mem_drain_regrades += 1;
        }
        let t = &self.threads[ti];
        if t.ready_dirty || t.state != ThreadState::Running {
            return;
        }
        let Some(row) = self.code.row(t.segment, t.ip) else {
            return;
        };
        let slots = self.code.slots(row);
        let slot_of_unit = self.code.slot_of_unit(row);
        let mut add = row.ordered_units & !t.ready_units;
        let mut mask = t.ready_units;
        while add != 0 {
            let u = add.trailing_zeros() as usize;
            add &= add - 1;
            let i = slot_of_unit[u] as usize;
            let sm = &slots[i];
            if !t.issued[i] && t.regs.masks_ready(&sm.src, &sm.dst) && Self::order_ok(t, &sm.order)
            {
                mask |= 1u64 << u;
            }
        }
        self.threads[ti].ready_units = mask;
    }

    /// Grades a slot's precomputed [`OrderRule`] — the readiness cache's
    /// form of the `OpKind` match inside [`Machine::readiness`] (register
    /// readiness was already established by the packed-mask check). The
    /// differential tests pin the two implementations to each other.
    #[inline]
    fn order_ok(t: &Thread, rule: &OrderRule) -> bool {
        match rule {
            OrderRule::None => true,
            OrderRule::FenceAll => t.outstanding_mem.is_empty(),
            OrderRule::FenceStores => t.outstanding_mem.iter().all(|&(_, _, s)| !s),
            OrderRule::Hazard {
                base,
                off,
                is_store,
            } => {
                // No outstanding traffic cannot conflict — skip the
                // address computation entirely (the common case on the
                // first reference of a burst).
                if t.outstanding_mem.is_empty() {
                    return true;
                }
                let v = |o: &AddrOperand| match o {
                    AddrOperand::Reg(idx) => t.regs.value_at(*idx).as_int(),
                    AddrOperand::Imm(i) => Ok(*i),
                };
                let addr = match (v(base), v(off)) {
                    (Ok(b), Ok(o)) => b.wrapping_add(o) as u64,
                    // Let issue_one surface the type error.
                    _ => return true,
                };
                !t.outstanding_mem
                    .iter()
                    .any(|&(_, a, s)| a == addr && (s || *is_store))
            }
        }
    }

    /// The scan-every-cycle reference engine: rescans every live
    /// thread's row for every unit, grading readiness straight off the
    /// program's operations. Selectable via [`Machine::set_engine`] as
    /// the oracle the cached engines are verified against.
    fn issue_all_scan(&mut self, now: u64) -> Result<bool, SimError> {
        let mut any = false;
        let mut candidates = mem::take(&mut self.scratch.cand);
        for fu_idx in 0..self.config.units().len() {
            let fu = FuId(fu_idx as u16);
            if self.wb_queues[fu_idx].len() >= self.config.wb_buffer {
                continue;
            }
            // Operation buffer: the unissued op of each running thread's
            // current row bound to this unit, if ready.
            candidates.clear();
            for &ti in &self.live {
                let t = &self.threads[ti as usize];
                if t.state != ThreadState::Running {
                    continue;
                }
                let seg = self.program.segment(t.segment);
                let Some(row) = seg.rows.get(t.ip as usize) else {
                    continue;
                };
                for (slot_idx, (slot_fu, op)) in row.slots().iter().enumerate() {
                    if *slot_fu != fu || t.issued[slot_idx] {
                        continue;
                    }
                    if Self::ready(t, op) {
                        candidates.push((t.id, slot_idx));
                    }
                    break; // at most one slot per unit per row
                }
            }
            let Some(&(tid, slot_idx)) = self.select(fu, &candidates) else {
                continue;
            };
            if let Some(sink) = &mut self.obs.sink {
                for &(loser, _) in candidates.iter().filter(|(c, _)| *c != tid) {
                    sink.event(&ProbeEvent::ArbLoss {
                        cycle: now,
                        thread: loser.0,
                        fu,
                    });
                }
            }
            self.issue_one::<false>(now, fu, tid, slot_idx)?;
            any = true;
        }
        self.scratch.cand = candidates;
        Ok(any)
    }

    /// Strict-VLIW ablation: a thread's current row issues atomically —
    /// every operation data-ready and every needed unit free — or not at
    /// all (no intra-row slip). Threads are considered in rotating order
    /// for fairness.
    fn issue_all_lockstep(&mut self, now: u64) -> Result<bool, SimError> {
        if self.live.is_empty() {
            return Ok(false);
        }
        let mut any = false;
        let mut used_units = mem::take(&mut self.scratch.units);
        used_units.clear();
        let mut live_now = mem::take(&mut self.scratch.live);
        live_now.clear();
        live_now.extend_from_slice(&self.live);
        let mut slots = mem::take(&mut self.scratch.slots);
        let start = (now as usize) % live_now.len();
        for k in 0..live_now.len() {
            let ti = live_now[(start + k) % live_now.len()];
            let t = &self.threads[ti as usize];
            if t.state != ThreadState::Running {
                continue;
            }
            let seg = self.program.segment(t.segment);
            let Some(row) = seg.rows.get(t.ip as usize) else {
                continue;
            };
            if row.is_empty() {
                continue;
            }
            let all_ready = row.slots().iter().enumerate().all(|(i, (fu, op))| {
                !t.issued.get(i).copied().unwrap_or(true)
                    && !used_units.contains(fu)
                    && Self::ready(t, op)
            });
            if !all_ready {
                continue;
            }
            slots.clear();
            slots.extend(
                row.slots()
                    .iter()
                    .enumerate()
                    .map(|(i, (fu, _))| (*fu, i as u32)),
            );
            for &(fu, slot_idx) in &slots {
                used_units.push(fu);
                self.issue_one::<false>(now, fu, ThreadId(ti), slot_idx as usize)?;
                any = true;
            }
        }
        self.scratch.units = used_units;
        self.scratch.live = live_now;
        self.scratch.slots = slots;
        Ok(any)
    }

    /// Data-presence and scoreboard check, plus the memory-consistency
    /// rules: synchronizing references and `fork` fence on the thread's
    /// outstanding memory traffic, and a reference may not issue while a
    /// same-address reference involving a store is outstanding (stores
    /// otherwise complete out of order under variable latency).
    fn ready(t: &Thread, op: &Operation) -> bool {
        Self::readiness(t, op) == Readiness::Ready
    }

    /// The graded form of [`Machine::ready`], shared with stall
    /// attribution so the profiler explains slots with exactly the logic
    /// that gated them. An associated function (state comes entirely
    /// from the thread and the operation) so the lazy readiness refresh
    /// can call it under split borrows of the machine.
    fn readiness(t: &Thread, op: &Operation) -> Readiness {
        if !op.src_regs().all(|r| t.regs.is_present(r))
            || !op.dsts.iter().all(|d| t.regs.no_writers(*d))
        {
            return Readiness::Operands;
        }
        match &op.kind {
            OpKind::Mem(m) => {
                // Synchronizing stores fence on all outstanding references;
                // synchronizing loads only on outstanding *stores* (their
                // precondition cannot depend on our own loads), letting a
                // wave of consumes pipeline.
                match m {
                    MemOp::Store(fl) if *fl != pc_isa::StoreFlavor::Plain => {
                        return if t.outstanding_mem.is_empty() {
                            Readiness::Ready
                        } else {
                            Readiness::MemOrder
                        };
                    }
                    MemOp::Load(fl) if *fl != pc_isa::LoadFlavor::Plain => {
                        return if t.outstanding_mem.iter().all(|&(_, _, s)| !s) {
                            Readiness::Ready
                        } else {
                            Readiness::MemOrder
                        };
                    }
                    _ => {}
                }
                let addr = {
                    let v = |o: &pc_isa::Operand| match o {
                        pc_isa::Operand::Reg(r) => t.regs.value(*r).as_int(),
                        pc_isa::Operand::ImmInt(i) => Ok(*i),
                        pc_isa::Operand::ImmFloat(_) => Ok(0),
                    };
                    match (v(&op.srcs[0]), v(&op.srcs[1])) {
                        (Ok(b), Ok(o)) => b.wrapping_add(o) as u64,
                        // Let issue_one surface the type error.
                        _ => return Readiness::Ready,
                    }
                };
                let is_store = matches!(m, MemOp::Store(_));
                if t.outstanding_mem
                    .iter()
                    .any(|&(_, a, s)| a == addr && (s || is_store))
                {
                    Readiness::MemOrder
                } else {
                    Readiness::Ready
                }
            }
            OpKind::Branch(BranchOp::Fork { .. }) => {
                if t.outstanding_mem.is_empty() {
                    Readiness::Ready
                } else {
                    Readiness::MemOrder
                }
            }
            _ => Readiness::Ready,
        }
    }

    /// Applies the arbitration policy to the unit's candidate set.
    fn select<'a>(
        &mut self,
        fu: FuId,
        candidates: &'a [(ThreadId, usize)],
    ) -> Option<&'a (ThreadId, usize)> {
        if candidates.is_empty() {
            return None;
        }
        // A lone candidate wins under either policy; round-robin still
        // records it so the next contended round starts past it.
        if let [only] = candidates {
            if matches!(self.config.arbitration, ArbitrationPolicy::RoundRobin) {
                self.rr[fu.0 as usize] = only.0 .0 + 1;
            }
            return Some(only);
        }
        match self.config.arbitration {
            ArbitrationPolicy::FixedPriority => candidates
                .iter()
                .min_by_key(|(tid, _)| self.threads[tid.0 as usize].priority),
            ArbitrationPolicy::RoundRobin => {
                let start = self.rr[fu.0 as usize];
                let chosen = candidates
                    .iter()
                    .filter(|(tid, _)| tid.0 >= start)
                    .chain(candidates.iter())
                    .next();
                if let Some((tid, _)) = chosen {
                    self.rr[fu.0 as usize] = tid.0 + 1;
                }
                chosen
            }
        }
    }

    /// Issues one operation: reads sources, claims destinations, enters
    /// the pipeline / memory system / probe trace.
    ///
    /// `DECODED` selects the flat dispatch: operands gather through
    /// pre-resolved flat register indices and unboxed immediates
    /// ([`DecSrc`]), destinations claim through flat indices, and the
    /// latency comes off the decoded record. The event engine (`false`)
    /// keeps the boxed [`pc_isa::Operand`] path as an oracle.
    /// Enqueues a precomputed effect on `fu`'s pipeline, due at `done`,
    /// maintaining the O(1) due-cycle counters.
    fn push_pipe(&mut self, fu: FuId, tid: ThreadId, op: u32, payload: ExecPayload, done: u64) {
        self.pipe_next[fu.0 as usize] = self.pipe_next[fu.0 as usize].min(done);
        self.next_pipe_due = self.next_pipe_due.min(done);
        self.pipe_total += 1;
        debug_assert!(self.pipes[fu.0 as usize]
            .back()
            .map_or(true, |b| b.done <= done));
        self.pipes[fu.0 as usize].push_back(Exec {
            thread: tid,
            op,
            payload,
            done,
        });
    }

    fn issue_one<const DECODED: bool>(
        &mut self,
        now: u64,
        fu: FuId,
        tid: ThreadId,
        slot_idx: usize,
    ) -> Result<(), SimError> {
        let t = &mut self.threads[tid.0 as usize];
        let seg_id = t.segment;
        let row = t.ip;
        // The slot metadata self-contains operands, destinations, and the
        // action, so steady-state issue never dereferences the program
        // (only the trace block below does, for the mnemonic). The op
        // index is resolved once here and rides the pipeline entry, so
        // completion reaches the record in a single load.
        let op_idx = self
            .code
            .row(seg_id, row)
            .expect("issue targets a current row")
            .op_base
            + slot_idx as u32;
        let sm = &self.code.ops[op_idx as usize];
        let latency = if DECODED {
            sm.latency
        } else {
            self.config.fu(fu).latency as u64
        };
        let vals: ValList = if DECODED {
            sm.srcs
                .iter()
                .map(|s| match s {
                    DecSrc::Reg(i) => t.regs.value_at(*i),
                    DecSrc::Imm(v) => *v,
                })
                .collect()
        } else {
            sm.srcs_ops
                .iter()
                .map(|s| match s {
                    pc_isa::Operand::Reg(r) => t.regs.value(*r),
                    pc_isa::Operand::ImmInt(i) => Value::Int(*i),
                    pc_isa::Operand::ImmFloat(f) => Value::Float(*f),
                })
                .collect()
        };
        if DECODED {
            for &i in sm.dsts_flat.iter() {
                t.regs.begin_write_at(i);
            }
        } else {
            for d in sm.dsts.iter() {
                t.regs.begin_write(*d);
            }
        }
        t.issued[slot_idx] = true;
        t.unissued -= 1;
        let row_done = t.unissued == 0;
        t.ops_issued += 1;
        t.last_issue = now;
        // Issue claims registers and (below) may add outstanding memory
        // traffic. A clean readiness cache is repaired incrementally at
        // the end of this function; a dirty one stays dirty.
        let was_clean = !t.ready_dirty;
        let action = sm.action;
        let tag = sm.tag;
        self.ops_issued += 1;
        self.ops_by_unit[fu.0 as usize] += 1;
        if self.obs.profiling {
            let base = self.obs.slot_base[seg_id.0 as usize][row as usize];
            self.obs.issued_dense[base as usize + slot_idx] += 1;
        }
        if self.obs.trace.is_some() || self.obs.sink.is_some() {
            let (_, op) = &self.program.segment(seg_id).rows[row as usize].slots()[slot_idx];
            let ev = crate::trace::TraceEvent {
                cycle: now,
                fu,
                thread: tid.0,
                mnemonic: op.kind.mnemonic(),
                seg: seg_id.0,
                row,
                slot: slot_idx as u16,
            };
            if let Some(sink) = &mut self.obs.sink {
                sink.event(&ProbeEvent::Issue(ev.clone()));
            }
            if let Some(trace) = &mut self.obs.trace {
                trace.push(ev);
            }
        }

        match action {
            SlotAction::Mem(m) => {
                let addr_base = vals[0].as_int()?;
                let addr_off = vals[1].as_int()?;
                let addr = addr_base.wrapping_add(addr_off);
                if addr < 0 {
                    return Err(SimError::Mem(pc_memsys::MemError::OutOfBounds {
                        addr: addr as u64,
                    }));
                }
                let kind = match m {
                    MemOp::Load(fl) => RequestKind::Load(fl),
                    MemOp::Store(fl) => RequestKind::Store(fl, vals[2]),
                };
                let token = self.tokens.insert(
                    MemToken {
                        thread: tid,
                        fu,
                        is_load: matches!(m, MemOp::Load(_)),
                    },
                    op_idx,
                );
                // The reference spends the unit's latency in the pipeline
                // before reaching the memory system proper; we fold that
                // into the submission cycle (unit latency 1 == submit now).
                let bank_wait = self.mem.submit(now + latency - 1, token, addr as u64, kind);
                if bank_wait > 0 {
                    if let Some(sink) = &mut self.obs.sink {
                        sink.event(&ProbeEvent::BankConflict {
                            cycle: now,
                            thread: tid.0,
                            addr: addr as u64,
                            wait: bank_wait,
                        });
                    }
                }
                self.threads[tid.0 as usize].outstanding_mem.push((
                    token,
                    addr as u64,
                    matches!(m, MemOp::Store(_)),
                ));
            }
            SlotAction::Probe(id) => {
                self.probes.push(ProbeRecord {
                    thread: tid.0,
                    id,
                    cycle: now,
                });
            }
            SlotAction::Branch => {
                self.threads[tid.0 as usize].branch_pending = true;
                let payload = if DECODED {
                    Self::branch_payload_dec(&self.code.ops[op_idx as usize].branch, vals)?
                } else {
                    let (_, pop) =
                        &self.program.segment(seg_id).rows[row as usize].slots()[slot_idx];
                    match &pop.kind {
                        OpKind::Branch(b) => Self::branch_payload(b, vals)?,
                        _ => unreachable!("SlotAction::Branch indexes a branch op"),
                    }
                };
                self.push_pipe(fu, tid, op_idx, payload, now + latency);
            }
            SlotAction::Int(iop) => {
                let v = if DECODED {
                    op::eval_alu(tag, vals.as_slice())?
                } else {
                    op::eval_int(iop, vals.as_slice())?
                };
                self.push_pipe(fu, tid, op_idx, ExecPayload::Result(v), now + latency);
            }
            SlotAction::Float(fop) => {
                let v = if DECODED {
                    op::eval_alu(tag, vals.as_slice())?
                } else {
                    op::eval_float(fop, vals.as_slice())?
                };
                self.push_pipe(fu, tid, op_idx, ExecPayload::Result(v), now + latency);
            }
        }
        if was_clean {
            self.update_ready_after_issue(
                tid.0 as usize,
                slot_idx,
                matches!(action, SlotAction::Mem(_)),
            );
        }
        if row_done {
            self.advance_hint = true;
        }
        Ok(())
    }

    /// Incrementally repairs a *clean* readiness cache after its thread
    /// issues `slot_idx`: within one issue phase a thread's readiness only
    /// shrinks from its own issues (writebacks and memory completions land
    /// in earlier step phases), so it suffices to drop the issued unit's
    /// bit and exactly re-grade the sibling slots the issue can unready —
    /// those whose operands the issued slot writes (`kills`), plus every
    /// ordered slot when the issue added outstanding memory traffic.
    fn update_ready_after_issue(&mut self, ti: usize, slot_idx: usize, added_mem: bool) {
        let mask = {
            let t = &self.threads[ti];
            let row = self
                .code
                .row(t.segment, t.ip)
                .expect("issued slot implies a current row");
            let slots = self.code.slots(row);
            let slot_of_unit = self.code.slot_of_unit(row);
            let sm = &slots[slot_idx];
            let mut mask = t.ready_units & !(1u64 << sm.fu.0);
            let mut recheck = sm.kills & mask;
            if added_mem {
                recheck |= row.ordered_units & mask;
            }
            if recheck != 0 {
                let two = row.two_word;
                let (p0, p1, w0, w1) = t.regs.words01();
                while recheck != 0 {
                    let u = recheck.trailing_zeros() as usize;
                    recheck &= recheck - 1;
                    let i = slot_of_unit[u] as usize;
                    let smi = &slots[i];
                    let data_ready = if two {
                        (p0 & smi.src01[0]) == smi.src01[0]
                            && (p1 & smi.src01[1]) == smi.src01[1]
                            && (w0 & smi.dst01[0]) == 0
                            && (w1 & smi.dst01[1]) == 0
                    } else {
                        t.regs.masks_ready(&smi.src, &smi.dst)
                    };
                    if !data_ready || (smi.has_order && !Self::order_ok(t, &smi.order)) {
                        mask &= !(1u64 << u);
                    }
                }
            }
            mask
        };
        self.threads[ti].ready_units = mask;
    }

    /// Advances instruction pointers once rows fully issue and transfers
    /// resolve. Returns whether any thread advanced or halted.
    fn advance_threads(&mut self, now: u64) -> Result<bool, SimError> {
        // Nothing since the last scan made any thread eligible to advance:
        // rows complete only through issue (`row_done` in `issue_one`), and
        // branch resolutions on completed rows transfer directly in
        // `resolve_branch`'s fast path.
        if !self.advance_hint {
            return Ok(false);
        }
        self.advance_hint = false;
        let mut any = false;
        // Snapshot: apply_transfer edits `live` (halts, fork spawns).
        let mut live_now = mem::take(&mut self.scratch.live);
        live_now.clear();
        live_now.extend_from_slice(&self.live);
        for &ti in &live_now {
            let i = ti as usize;
            let t = &self.threads[i];
            debug_assert_eq!(t.unissued == 0, t.row_fully_issued());
            if t.state != ThreadState::Running || t.unissued != 0 || t.branch_pending {
                continue;
            }
            let transfer = self.transfers[i].take().unwrap_or(Transfer::FallThrough);
            self.apply_transfer(i, transfer, now);
            any = true;
        }
        self.scratch.live = live_now;
        Ok(any)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_isa::{
        ClusterId, CodeSegment, FloatOp, InstWord, IntOp, LoadFlavor, Operand, StoreFlavor,
    };

    fn r(c: u16, i: u32) -> RegId {
        RegId::new(ClusterId(c), i)
    }

    /// Builds a single-segment program with the baseline register budget.
    fn program_of(rows: Vec<InstWord>, regs: Vec<u32>) -> Program {
        let mut p = Program::new();
        let mut seg = CodeSegment::new("main");
        seg.rows = rows;
        seg.regs_per_cluster = regs;
        p.add_segment(seg);
        p
    }

    fn run_program(p: Program) -> RunStats {
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.run(100_000).unwrap()
    }

    #[test]
    fn single_add_completes() {
        let mut row = InstWord::new();
        row.push(
            FuId(0),
            Operation::int(
                IntOp::Add,
                vec![Operand::ImmInt(2), Operand::ImmInt(3)],
                r(0, 0),
            ),
        );
        let stats = run_program(program_of(vec![row], vec![1, 0, 0, 0, 0, 0]));
        assert_eq!(stats.ops_issued, 1);
        assert!(stats.cycles <= 3);
        assert_eq!(stats.threads_spawned, 1);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // r0 = 1 + 1 ; r1 = r0 + 1 ; r2 = r1 + 1  (separate rows)
        let mk = |src: Operand, dst: RegId| {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(IntOp::Add, vec![src, Operand::ImmInt(1)], dst),
            );
            row
        };
        let rows = vec![
            mk(Operand::ImmInt(1), r(0, 0)),
            mk(Operand::Reg(r(0, 0)), r(0, 1)),
            mk(Operand::Reg(r(0, 1)), r(0, 2)),
        ];
        let stats = run_program(program_of(rows, vec![3, 0, 0, 0, 0, 0]));
        assert_eq!(stats.ops_issued, 3);
        // Each op waits for the previous writeback: ≥ 3 cycles of issue.
        assert!(stats.cycles >= 3, "cycles {}", stats.cycles);
    }

    #[test]
    fn independent_ops_issue_in_parallel_across_clusters() {
        let mut row = InstWord::new();
        for c in 0..4u16 {
            let fu = FuId(c * 3); // integer unit of each arithmetic cluster
            row.push(
                fu,
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(1), Operand::ImmInt(2)],
                    r(c, 0),
                ),
            );
        }
        let stats = run_program(program_of(vec![row], vec![1, 1, 1, 1, 0, 0]));
        assert_eq!(stats.ops_issued, 4);
        assert!(stats.cycles <= 3, "cycles {}", stats.cycles);
    }

    #[test]
    fn intra_row_slip() {
        // Row 0: u0 produces r0 (from immediate), u1 (FPU) waits on r1
        // which is produced by nothing yet -> deadlock unless slip works.
        // Build: row0: u0: r0 <- 1+2 ; u3: r1' in cluster1... simpler:
        // row0 has op A on u0 (ready) and op B on u1 reading r0 (not ready
        // until A writes back). They are in the SAME row: B slips.
        let mut row0 = InstWord::new();
        row0.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmFloat(1.5)],
                vec![r(0, 0)],
            ),
        );
        row0.push(
            FuId(1),
            Operation::float(
                FloatOp::Fadd,
                vec![Operand::Reg(r(0, 0)), Operand::ImmFloat(1.0)],
                r(0, 1),
            ),
        );
        let stats = run_program(program_of(vec![row0], vec![2, 0, 0, 0, 0, 0]));
        assert_eq!(stats.ops_issued, 2);
        assert!(stats.cycles >= 2); // B issued at least a cycle after A
    }

    #[test]
    fn in_order_issue_across_rows() {
        // Row 1 must not issue before every op of row 0 has issued, even
        // when row 1 is data-ready.
        let mut row0 = InstWord::new();
        // Not ready until r0 written by... nothing writes r0: use a mov
        // chain: row0 op reads r1 written by row0's own other op? Simplest
        // demonstration: row0 has a slow dependency via FPU latency.
        row0.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmInt(7)],
                vec![r(0, 0)],
            ),
        );
        row0.push(
            FuId(1),
            Operation::float(
                FloatOp::Fadd,
                vec![Operand::Reg(r(0, 1)), Operand::ImmFloat(1.0)],
                r(0, 2),
            ),
        );
        // r1 produced only in row... r1 never produced: would deadlock.
        // Instead produce r1 from row0's mov destination r0 via a second
        // mov scheduled on cluster0 IU in row0? Can't: one op per unit per
        // row. Use cluster 1's IU writing remotely into c0.r1.
        row0.push(
            FuId(3),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmFloat(2.0)],
                vec![r(0, 1)],
            ),
        );
        let mut row1 = InstWord::new();
        row1.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmInt(9)],
                vec![r(0, 3)],
            ),
        );
        let stats = run_program(program_of(vec![row0, row1], vec![4, 0, 0, 0, 0, 0]));
        assert_eq!(stats.ops_issued, 4);
    }

    #[test]
    fn two_threads_share_one_unit() {
        // Child and parent both hammer cluster 0's integer unit.
        let mut p = Program::new();
        let mut child = CodeSegment::new("child");
        for _ in 0..8 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(1), Operand::ImmInt(1)],
                    r(0, 0),
                ),
            );
            child.rows.push(row);
        }
        child.regs_per_cluster = vec![1, 0, 0, 0, 0, 0];
        let mut main = CodeSegment::new("main");
        let mut fork_row = InstWord::new();
        fork_row.push(
            FuId(12),
            Operation::new(
                OpKind::Branch(BranchOp::Fork {
                    segment: SegmentId(1),
                    arg_dsts: vec![],
                }),
                vec![],
                vec![],
            ),
        );
        main.rows.push(fork_row);
        for _ in 0..8 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(2), Operand::ImmInt(2)],
                    r(0, 0),
                ),
            );
            main.rows.push(row);
        }
        main.regs_per_cluster = vec![1, 0, 0, 0, 0, 0];
        p.add_segment(main);
        p.add_segment(child);
        let stats = run_program(p);
        assert_eq!(stats.threads_spawned, 2);
        assert_eq!(stats.ops_issued, 17);
        // 16 adds through one unit: at least 16 cycles.
        assert!(stats.cycles >= 16, "cycles {}", stats.cycles);
        assert!(stats.peak_threads == 2);
    }

    #[test]
    fn branch_loop_executes_n_iterations() {
        // r0 starts 0 (installed by an initial mov); loop: r0 += 1;
        // cond = r0 < 3 -> branch back.
        // Row 0: mov r0 <- 0 (IU), row 1: add r0 += 1 and (branch cluster)
        // needs cond in branch cluster's register file.
        // Layout: row1: IU: r0 += 1 writes both c0.r0 and... cond computed
        // row2: IU: slt c0.r1 <- r0 < 3 with second dst c4.r0
        // row3: BR: bt c4.r0 -> row 1
        let mut rows = Vec::new();
        let mut row0 = InstWord::new();
        row0.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmInt(0)],
                vec![r(0, 0)],
            ),
        );
        rows.push(row0);
        let mut row1 = InstWord::new();
        row1.push(
            FuId(0),
            Operation::int(
                IntOp::Add,
                vec![Operand::Reg(r(0, 0)), Operand::ImmInt(1)],
                r(0, 0),
            ),
        );
        rows.push(row1);
        let mut row2 = InstWord::new();
        row2.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Slt),
                vec![Operand::Reg(r(0, 0)), Operand::ImmInt(3)],
                vec![r(4, 0)],
            ),
        );
        rows.push(row2);
        let mut row3 = InstWord::new();
        row3.push(
            FuId(12),
            Operation::new(
                OpKind::Branch(BranchOp::Br {
                    on_true: true,
                    target: 1,
                }),
                vec![Operand::Reg(r(4, 0))],
                vec![],
            ),
        );
        rows.push(row3);
        let stats = run_program(program_of(rows, vec![1, 0, 0, 0, 1, 0]));
        // 1 mov + 3 iterations × (add, slt, br) = 10 ops.
        assert_eq!(stats.ops_issued, 10);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut row0 = InstWord::new();
        row0.push(
            FuId(2),
            Operation::store(
                StoreFlavor::Plain,
                Operand::ImmInt(40),
                Operand::ImmInt(2),
                Operand::ImmFloat(6.5),
            ),
        );
        let mut row1 = InstWord::new();
        row1.push(
            FuId(2),
            Operation::load(
                LoadFlavor::Plain,
                Operand::ImmInt(40),
                Operand::ImmInt(2),
                r(0, 0),
            ),
        );
        // Copy loaded value to another address so we can observe it.
        let mut row2 = InstWord::new();
        row2.push(
            FuId(2),
            Operation::store(
                StoreFlavor::Plain,
                Operand::ImmInt(50),
                Operand::ImmInt(0),
                Operand::Reg(r(0, 0)),
            ),
        );
        let p = program_of(vec![row0, row1, row2], vec![1, 0, 0, 0, 0, 0]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.run(1000).unwrap();
        assert_eq!(m.memory_mut().read_word(42).unwrap(), Value::Float(6.5));
        assert_eq!(m.memory_mut().read_word(50).unwrap(), Value::Float(6.5));
    }

    #[test]
    fn deadlock_is_detected() {
        // A load that consumes an empty cell nobody fills, then an op
        // depending on it.
        let mut p = Program::new();
        let mut seg = CodeSegment::new("main");
        let mut row0 = InstWord::new();
        row0.push(
            FuId(2),
            Operation::load(
                LoadFlavor::Consume,
                Operand::ImmInt(0),
                Operand::ImmInt(0),
                r(0, 0),
            ),
        );
        let mut row1 = InstWord::new();
        row1.push(
            FuId(0),
            Operation::int(
                IntOp::Add,
                vec![Operand::Reg(r(0, 0)), Operand::ImmInt(1)],
                r(0, 1),
            ),
        );
        seg.rows = vec![row0, row1];
        seg.regs_per_cluster = vec![2, 0, 0, 0, 0, 0];
        p.add_segment(seg);
        p.memory_size = 4;
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.memory_mut().set_empty(0, 1).unwrap();
        let err = m.run(10_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { parked: 1, .. }), "{err}");
    }

    #[test]
    fn cycle_limit_fires() {
        // An infinite loop.
        let mut row = InstWord::new();
        row.push(
            FuId(12),
            Operation::new(OpKind::Branch(BranchOp::Jmp { target: 0 }), vec![], vec![]),
        );
        let p = program_of(vec![row], vec![0; 6]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        assert!(matches!(
            m.run(50).unwrap_err(),
            SimError::CycleLimit { limit: 50 }
        ));
    }

    #[test]
    fn probes_record_thread_and_cycle() {
        let mut row = InstWord::new();
        row.push(
            FuId(12),
            Operation::new(OpKind::Branch(BranchOp::Probe { id: 9 }), vec![], vec![]),
        );
        let stats = run_program(program_of(vec![row], vec![0; 6]));
        assert_eq!(stats.probes.len(), 1);
        assert_eq!(stats.probes[0].id, 9);
        assert_eq!(stats.probes[0].thread, 0);
    }

    #[test]
    fn fixed_priority_prefers_low_thread_ids() {
        // Two children contend for u0; thread 1 (spawned first) has higher
        // priority than thread 2 under FixedPriority. Both run long loops;
        // check thread 1 finishes first via halted_at ordering — observable
        // through per-thread issue counts at a midpoint is complex, so we
        // simply check the run completes and both threads issued equally.
        let mut p = Program::new();
        let mut child = CodeSegment::new("child");
        for _ in 0..20 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(1), Operand::ImmInt(1)],
                    r(0, 0),
                ),
            );
            child.rows.push(row);
        }
        child.regs_per_cluster = vec![1, 0, 0, 0, 0, 0];

        let mut main = CodeSegment::new("main");
        for _ in 0..2 {
            let mut fork_row = InstWord::new();
            fork_row.push(
                FuId(12),
                Operation::new(
                    OpKind::Branch(BranchOp::Fork {
                        segment: SegmentId(1),
                        arg_dsts: vec![],
                    }),
                    vec![],
                    vec![],
                ),
            );
            main.rows.push(fork_row);
        }
        main.regs_per_cluster = vec![0; 6];
        p.add_segment(main);
        p.add_segment(child);

        let mc = MachineConfig::baseline().with_arbitration(ArbitrationPolicy::FixedPriority);
        let mut m = Machine::new(mc, p).unwrap();
        let stats = m.run(10_000).unwrap();
        assert_eq!(stats.threads_spawned, 3);
        assert_eq!(stats.ops_by_thread[1], 20);
        assert_eq!(stats.ops_by_thread[2], 20);
    }

    #[test]
    fn utilization_counts_by_class() {
        let mut row = InstWord::new();
        row.push(
            FuId(1),
            Operation::float(
                FloatOp::Fadd,
                vec![Operand::ImmFloat(1.0), Operand::ImmFloat(2.0)],
                r(0, 0),
            ),
        );
        let stats = run_program(program_of(vec![row], vec![1, 0, 0, 0, 0, 0]));
        assert_eq!(*stats.ops_by_class.get(&UnitClass::Float).unwrap(), 1);
        assert!(stats.utilization(UnitClass::Float) > 0.0);
    }

    #[test]
    fn lockstep_issue_forbids_slip() {
        // Row 0: a ready mov and an fadd depending on it. With slip the
        // row issues over two cycles; in lockstep the whole row waits
        // forever (the dependence can never be satisfied within one
        // cycle) — deadlock.
        let mut row0 = InstWord::new();
        row0.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Mov),
                vec![Operand::ImmFloat(1.5)],
                vec![r(0, 0)],
            ),
        );
        row0.push(
            FuId(1),
            Operation::float(
                FloatOp::Fadd,
                vec![Operand::Reg(r(0, 0)), Operand::ImmFloat(1.0)],
                r(0, 1),
            ),
        );
        let p = program_of(vec![row0], vec![2, 0, 0, 0, 0, 0]);
        let mc = MachineConfig::baseline().with_lockstep_issue(true);
        let mut m = Machine::new(mc, p).unwrap();
        assert!(matches!(m.run(1000), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn lockstep_issues_independent_rows_atomically() {
        let mut row = InstWord::new();
        for c in 0..4u16 {
            row.push(
                FuId(c * 3),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(1), Operand::ImmInt(2)],
                    r(c, 0),
                ),
            );
        }
        let p = program_of(vec![row], vec![1, 1, 1, 1, 0, 0]);
        let mc = MachineConfig::baseline().with_lockstep_issue(true);
        let mut m = Machine::new(mc, p).unwrap();
        let stats = m.run(1000).unwrap();
        assert_eq!(stats.ops_issued, 4);
        assert!(stats.cycles <= 3);
    }

    #[test]
    fn wb_buffer_depth_one_still_completes() {
        let mut rows = Vec::new();
        for i in 0..6 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(i), Operand::ImmInt(1)],
                    r(0, i as u32),
                ),
            );
            rows.push(row);
        }
        let p = program_of(rows, vec![6, 0, 0, 0, 0, 0]);
        let mc = MachineConfig::baseline()
            .with_interconnect(pc_isa::InterconnectScheme::SinglePort)
            .with_wb_buffer(1);
        let mut m = Machine::new(mc, p).unwrap();
        let stats = m.run(1000).unwrap();
        assert_eq!(stats.ops_issued, 6);
    }

    #[test]
    fn globals_roundtrip_through_machine() {
        let mut p = Program::new();
        let mut seg = CodeSegment::new("main");
        seg.rows.push(InstWord::new());
        p.add_segment(seg);
        p.alloc_symbol("xs", 4);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.write_global("xs", &[Value::Int(1), Value::Int(2)])
            .unwrap();
        m.run(100).unwrap();
        let xs = m.read_global("xs").unwrap();
        assert_eq!(xs[0], Value::Int(1));
        assert_eq!(xs[1], Value::Int(2));
        assert!(m.read_global("nope").is_err());
        assert!(m.write_global("xs", &[Value::Int(0); 9]).is_err());
    }

    #[test]
    fn pending_writebacks_count_as_latent_work() {
        // Regression: the deadlock detector once ignored wb_queues, so a
        // no-progress cycle with results still queued for write-port
        // arbitration (and nothing in pipelines or memory) would have been
        // misreported as a deadlock. With no work anywhere the machine
        // reports nothing pending; with a queued writeback it must. A
        // restricted interconnect keeps the queued path (a contention-free
        // one applies writes on the spot and never queues).
        let mut row = InstWord::new();
        row.push(
            FuId(0),
            Operation::int(
                IntOp::Add,
                vec![Operand::ImmInt(1), Operand::ImmInt(1)],
                r(0, 0),
            ),
        );
        let p = program_of(vec![row], vec![1, 0, 0, 0, 0, 0]);
        let mc =
            MachineConfig::baseline().with_interconnect(pc_isa::InterconnectScheme::SinglePort);
        let mut m = Machine::new(mc, p).unwrap();
        assert!(!m.pending_latency());
        m.enqueue_writeback(
            ThreadId(0),
            FuId(0),
            RegList::from_slice(&[r(0, 0)]),
            FlatList::from_slice(&[0]),
            0,
            Value::Int(1),
        );
        assert!(m.pending_latency());
    }

    #[test]
    fn empty_destination_results_retire_without_queueing() {
        // A result with no destinations must not occupy a writeback slot:
        // no arbitration round could ever drain it, so it would read as
        // latent work forever. (validate_program forbids such ops, so this
        // guards the internal path only.)
        let mut row = InstWord::new();
        row.push(
            FuId(0),
            Operation::int(
                IntOp::Add,
                vec![Operand::ImmInt(1), Operand::ImmInt(2)],
                r(0, 0),
            ),
        );
        let p = program_of(vec![row], vec![1, 0, 0, 0, 0, 0]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.enqueue_writeback(
            ThreadId(0),
            FuId(0),
            RegList::new(),
            FlatList::new(),
            0,
            Value::Int(3),
        );
        assert!(!m.pending_latency());
        assert!(!m.retire_writebacks());
    }

    #[test]
    fn saturated_write_port_does_not_deadlock() {
        // Every op writes two destinations in the same cluster, but
        // SinglePort retires one write per file per cycle — the writeback
        // queue stays saturated for many cycles and the run must still
        // finish with every write applied.
        let mut rows = Vec::new();
        for i in 0..8u32 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::new(
                    OpKind::Int(IntOp::Add),
                    vec![Operand::ImmInt(i64::from(i)), Operand::ImmInt(100)],
                    vec![r(0, 2 * i), r(0, 2 * i + 1)],
                ),
            );
            rows.push(row);
        }
        let p = program_of(rows, vec![16, 0, 0, 0, 0, 0]);
        let mc = MachineConfig::baseline()
            .with_interconnect(pc_isa::InterconnectScheme::SinglePort)
            .with_wb_buffer(16);
        let mut m = Machine::new(mc, p).unwrap();
        let stats = m.run(10_000).unwrap();
        assert_eq!(stats.ops_issued, 8);
        // 16 register writes through one port: at least 16 cycles.
        assert!(stats.cycles >= 16, "cycles {}", stats.cycles);
    }

    #[test]
    fn unknown_memory_token_is_an_error_not_a_panic() {
        // A completion the machine never issued surfaces as a typed error.
        let mut row = InstWord::new();
        row.push(
            FuId(2),
            Operation::load(
                LoadFlavor::Plain,
                Operand::ImmInt(0),
                Operand::ImmInt(0),
                r(0, 0),
            ),
        );
        let p = program_of(vec![row], vec![1, 0, 0, 0, 0, 0]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.memory_mut()
            .submit(0, 999, 0, pc_memsys::RequestKind::Load(LoadFlavor::Plain));
        let err = m.run(1000).unwrap_err();
        assert!(
            matches!(err, SimError::UnknownToken { token: 999 }),
            "{err}"
        );
    }

    #[test]
    fn token_ids_are_reused_without_confusing_outstanding_refs() {
        // A long chain of memory references recycles slab token ids; each
        // completion must still pair with its own reference.
        let mut rows = Vec::new();
        for i in 0..10 {
            let mut row = InstWord::new();
            row.push(
                FuId(2),
                Operation::store(
                    StoreFlavor::Plain,
                    Operand::ImmInt(i),
                    Operand::ImmInt(0),
                    Operand::ImmInt(i * 7),
                ),
            );
            rows.push(row);
        }
        let p = program_of(rows, vec![0; 6]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.run(10_000).unwrap();
        for i in 0..10 {
            assert_eq!(
                m.memory_mut().read_word(i as u64).unwrap(),
                Value::Int(i * 7)
            );
        }
    }

    /// Two threads hammering cluster 0's integer unit (the contention
    /// workload of `two_threads_share_one_unit`).
    fn contention_program() -> Program {
        let mut p = Program::new();
        let mut child = CodeSegment::new("child");
        for _ in 0..8 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(1), Operand::ImmInt(1)],
                    r(0, 0),
                ),
            );
            child.rows.push(row);
        }
        child.regs_per_cluster = vec![1, 0, 0, 0, 0, 0];
        let mut main = CodeSegment::new("main");
        let mut fork_row = InstWord::new();
        fork_row.push(
            FuId(12),
            Operation::new(
                OpKind::Branch(BranchOp::Fork {
                    segment: SegmentId(1),
                    arg_dsts: vec![],
                }),
                vec![],
                vec![],
            ),
        );
        main.rows.push(fork_row);
        for _ in 0..8 {
            let mut row = InstWord::new();
            row.push(
                FuId(0),
                Operation::int(
                    IntOp::Add,
                    vec![Operand::ImmInt(2), Operand::ImmInt(2)],
                    r(0, 0),
                ),
            );
            main.rows.push(row);
        }
        main.regs_per_cluster = vec![1, 0, 0, 0, 0, 0];
        p.add_segment(main);
        p.add_segment(child);
        p
    }

    #[test]
    fn profiling_attributes_every_live_cycle() {
        let mut m = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        m.enable_profiling();
        let stats = m.run(10_000).unwrap();
        assert!(!stats.stalls.is_empty());
        assert!(stats.stalls.consistent(), "alive != busy + stalls");
        // Two threads fight for one integer unit: someone must lose
        // arbitration, and the loser's blocked slot is an integer op.
        assert!(stats.stalls.total_cause(StallCause::LostArbitration) > 0);
        assert!(stats.stalls.by_class.contains_key(&UnitClass::Integer));
        // No thread can be attributed more cycles than the run had.
        for t in &stats.stalls.threads {
            assert!(t.alive <= stats.cycles);
        }
    }

    #[test]
    fn profiling_does_not_perturb_the_schedule() {
        let mut plain = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        let base = plain.run(10_000).unwrap();
        let mut profiled = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        profiled.enable_profiling();
        profiled.enable_trace();
        let mut observed = profiled.run(10_000).unwrap();
        assert!(!observed.stalls.is_empty());
        observed.stalls = Default::default();
        assert_eq!(base, observed);
    }

    #[test]
    fn event_engine_matches_reference_engine() {
        // The contention program exercises arbitration losses, writeback
        // bursts, and memory ordering — the paths whose readiness-cache
        // repairs and decoded dispatch must reproduce the scan engine's
        // schedule exactly.
        for profiled in [false, true] {
            let mut reference =
                Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
            reference.set_engine(EngineKind::Scan);
            if profiled {
                reference.enable_profiling();
            }
            let b = reference.run(10_000).unwrap();
            for kind in [EngineKind::Decoded, EngineKind::Event] {
                let mut fast =
                    Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
                fast.set_engine(kind);
                if profiled {
                    fast.enable_profiling();
                }
                let a = fast.run(10_000).unwrap();
                assert_eq!(
                    a,
                    b,
                    "{} engine diverges from scan (profiled={profiled})",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn set_engine_round_trips_every_kind() {
        let mut m = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        assert_eq!(m.engine(), EngineKind::Decoded);
        for kind in [EngineKind::Scan, EngineKind::Event, EngineKind::Decoded] {
            m.set_engine(kind);
            assert_eq!(m.engine(), kind);
        }
    }

    #[test]
    fn host_telemetry_never_perturbs_the_run() {
        for kind in [EngineKind::Decoded, EngineKind::Event, EngineKind::Scan] {
            let mut plain = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
            plain.set_engine(kind);
            let want = plain.run(100_000).unwrap();

            let mut timed = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
            timed.set_engine(kind);
            assert!(timed.host_profile().is_none());
            timed.enable_host_telemetry();
            let got = timed.run(100_000).unwrap();
            assert_eq!(want, got, "{} engine diverges under telemetry", kind.name());

            let p = timed.host_profile().expect("telemetry enabled");
            assert!(p.steps > 0);
            // step() times the issue phase on every stepped cycle.
            assert_eq!(p.phases[PH_ISSUE].calls, p.steps);
            assert!(p.phases[PH_ISSUE].sampled_calls > 0);
        }
    }

    #[test]
    fn host_profile_counts_wake_repairs_on_cached_engines() {
        let mut m = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        m.enable_host_telemetry();
        m.run(100_000).unwrap();
        let p = m.host_profile().unwrap();
        // The contention program writes registers and rebuilds readiness
        // masks; the decoded engine must report both.
        assert!(p.bitmask_rebuilds > 0, "{p:?}");
        assert!(p.wake_repairs > 0, "{p:?}");
        assert_eq!(p.phases[PH_WAKE].calls, p.bitmask_rebuilds);
    }

    #[test]
    fn engine_kind_parses_and_prints() {
        for (s, k) in [
            ("decoded", EngineKind::Decoded),
            ("event", EngineKind::Event),
            ("scan", EngineKind::Scan),
        ] {
            assert_eq!(s.parse::<EngineKind>().unwrap(), k);
            assert_eq!(k.name(), s);
        }
        assert!("fast".parse::<EngineKind>().is_err());
    }

    #[test]
    fn ring_sink_sees_every_issue_and_stall_events() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let ring = Rc::new(RefCell::new(crate::probe::RingSink::new(4096)));
        let mut m = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        m.attach_probe(Box::new(Rc::clone(&ring)));
        let stats = m.run(10_000).unwrap();
        let counts = ring.borrow().counts();
        assert_eq!(counts.issues, stats.ops_issued);
        // Contention for one unit produces arbitration losses, and the
        // losers' cycles surface as stall events too.
        assert!(counts.arb_losses > 0);
        assert!(counts.stalls > 0);
        assert!(counts.writebacks > 0);
        // A sink alone must not populate the stats-side stall table.
        assert!(stats.stalls.is_empty());
    }

    #[test]
    fn observed_run_matches_unobserved_stats() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut plain = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        let base = plain.run(10_000).unwrap();
        let ring = Rc::new(RefCell::new(crate::probe::RingSink::new(16)));
        let mut m = Machine::new(MachineConfig::baseline(), contention_program()).unwrap();
        m.attach_probe(Box::new(Rc::clone(&ring)));
        let observed = m.run(10_000).unwrap();
        assert_eq!(base, observed);
    }

    #[test]
    fn remote_destination_write_reaches_other_cluster() {
        // Cluster 0 computes, writes to cluster 1; cluster 1 stores it.
        let mut row0 = InstWord::new();
        row0.push(
            FuId(0),
            Operation::new(
                OpKind::Int(IntOp::Add),
                vec![Operand::ImmInt(20), Operand::ImmInt(22)],
                vec![r(1, 0)],
            ),
        );
        let mut row1 = InstWord::new();
        row1.push(
            FuId(5), // cluster 1 memory unit
            Operation::store(
                StoreFlavor::Plain,
                Operand::ImmInt(7),
                Operand::ImmInt(0),
                Operand::Reg(r(1, 0)),
            ),
        );
        let p = program_of(vec![row0, row1], vec![0, 1, 0, 0, 0, 0]);
        let mut m = Machine::new(MachineConfig::baseline(), p).unwrap();
        m.run(1000).unwrap();
        assert_eq!(m.memory_mut().read_word(7).unwrap(), Value::Int(42));
    }
}
