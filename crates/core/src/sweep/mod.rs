//! Parallel batch execution of simulator runs.
//!
//! The paper's evaluation is a configuration cross-product — benchmarks
//! × modes × interconnect schemes × memory models × FU mixes — and each
//! cell is an independent compile + simulate + validate pipeline. This
//! module is the batch substrate the experiment harness, the benchmark
//! suite, and the `pcsim sweep` subcommand all share:
//!
//! - [`pool`] — a work-stealing deque pool (owners pop from the bottom,
//!   thieves steal blocks from the top) behind the [`par_map`] /
//!   [`try_par_map`] combinators, so long LUD cells don't serialize
//!   behind short Matrix cells.
//! - [`cache`] — a content-addressed result cache keyed by the hash of
//!   a cell's *inputs* (program source, mode, machine configuration,
//!   cycle limit, schema version); hits replay stored [`pc_sim::RunStats`]
//!   bit-identical to a fresh run.
//! - [`codec`] — the canonical JSON codec for `RunStats` that makes the
//!   cache and the JSONL streams exactly round-trippable (every field is
//!   an integer, so no float-formatting hazards exist).
//! - [`engine`] — [`SweepSpec`]/[`run_sweep`]: grid enumeration, JSONL
//!   streaming in deterministic cell order, and a manifest making
//!   sharded runs (`--shard k/n`) resumable after a kill.
//! - [`telemetry`] — [`SweepTelemetry`]: the lock-free host-side
//!   metrics registry behind `pcsim sweep --progress`, the periodic
//!   JSONL snapshot emitter, and the `pcsim metrics` report.

pub mod cache;
pub mod codec;
pub mod engine;
pub mod pool;
pub mod telemetry;

pub use cache::{cache_key, config_fingerprint, CachedResult, ResultCache, CACHE_SCHEMA_VERSION};
pub use engine::{
    run_sweep, Manifest, MemKind, Mix, SweepCell, SweepError, SweepOptions, SweepRow, SweepSpec,
    SweepSummary, SWEEP_SCHEMA_VERSION,
};
pub use pool::{default_jobs, par_map, try_par_map, PoolMetrics};
pub use telemetry::SweepTelemetry;
