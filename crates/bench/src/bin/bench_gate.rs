//! bench_gate — the perf-regression gate for CI.
//!
//! Compares two `BENCH_simcore.json` documents (the committed baseline
//! and a freshly measured one) and exits non-zero if any shared case's
//! `sim_cycles_per_sec` dropped by more than the limit:
//!
//! ```sh
//! git show HEAD:BENCH_simcore.json > /tmp/baseline.json
//! PC_BENCH_QUICK=1 cargo bench -p pc-bench --bench simcore
//! cargo run -p pc-bench --bin bench_gate -- \
//!     --baseline /tmp/baseline.json --current BENCH_simcore.json \
//!     --max-regress-pct 25
//! ```

use pc_bench::{parse_baseline, regressions, BaselineCase};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline FILE --current FILE [--max-regress-pct N]\n\
         exits 1 when any case in FILE(baseline) regressed by more than N% (default 25)"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load(path: &str) -> Vec<BaselineCase> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_baseline(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(baseline_path) = flag_value(&args, "--baseline") else {
        usage()
    };
    let Some(current_path) = flag_value(&args, "--current") else {
        usage()
    };
    let limit: f64 = flag_value(&args, "--max-regress-pct")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(25.0);

    let baseline = load(&baseline_path);
    let current = load(&current_path);

    for b in &baseline {
        match current.iter().find(|c| c.id == b.id) {
            Some(c) => {
                let ratio = if b.sim_cycles_per_sec > 0.0 {
                    c.sim_cycles_per_sec / b.sim_cycles_per_sec
                } else {
                    1.0
                };
                println!(
                    "{:<28} {:>12.0} -> {:>12.0} cycles/s  ({:+.1}%)",
                    b.id,
                    b.sim_cycles_per_sec,
                    c.sim_cycles_per_sec,
                    100.0 * (ratio - 1.0)
                );
            }
            None => println!("{:<28} missing from current run (skipped)", b.id),
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.id == c.id) {
            println!("{:<28} new case, no baseline (skipped)", c.id);
        }
    }

    let failures = regressions(&baseline, &current, limit);
    if failures.is_empty() {
        println!("bench_gate: ok — no case regressed more than {limit:.0}%");
    } else {
        for f in &failures {
            eprintln!("bench_gate: FAIL {f}");
        }
        std::process::exit(1);
    }
}
