//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small* slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, high-quality, and identical across runs
//! and platforms (the simulator's reproducibility contract), though its
//! stream differs from upstream `StdRng` (ChaCha12); nothing in this
//! repository depends on upstream's exact stream.

use std::ops::{Range, RangeInclusive};

/// A type that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire); span+1 never overflows here.
                let bound = span + 1;
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(bound as u128);
                let mut lodigits = m as u64;
                if lodigits < bound {
                    let threshold = bound.wrapping_neg() % bound;
                    while lodigits < threshold {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(bound as u128);
                        lodigits = m as u64;
                    }
                }
                lo.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + HasPredecessor> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper for turning an exclusive upper bound into an inclusive one.
pub trait HasPredecessor {
    /// The greatest value strictly less than `self`.
    fn predecessor(self) -> Self;
}

macro_rules! impl_pred_int {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> Self { self - 1 }
        }
    )*};
}
impl_pred_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HasPredecessor for f64 {
    fn predecessor(self) -> Self {
        // Exclusive float ranges sample [lo, hi); hitting exactly `hi` has
        // probability ~2^-53, and callers here only use wide ranges.
        self
    }
}
impl HasPredecessor for f32 {
    fn predecessor(self) -> Self {
        self
    }
}

/// Core entropy source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&rate), "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(20u32..=29);
            assert!((20..=29).contains(&x));
            seen[(x - 20) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "not all values hit: {seen:?}");
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    use super::RngCore;
}
