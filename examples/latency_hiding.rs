//! Latency hiding: the motivating scenario of the paper's Figure 7.
//!
//! A statically scheduled machine stalls whole computations on every
//! cache miss; a processor-coupled machine hides misses behind other
//! threads. This example sweeps the miss rate from 0% to 30% on the
//! Matrix benchmark and prints the slowdown of STS vs Coupled.
//!
//! ```sh
//! cargo run --release --example latency_hiding
//! ```

use coupling::{benchmarks, run_benchmark, MachineMode};
use pc_isa::{MachineConfig, MemoryModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmarks::matrix();
    println!("Matrix, miss penalty 20–100 cycles, 3 seeds averaged\n");
    println!(
        "{:>9}  {:>12} {:>9}  {:>12} {:>9}",
        "miss rate", "STS cycles", "slowdown", "Coupled cyc", "slowdown"
    );

    let mut base = [0.0f64; 2];
    for pct in [0, 5, 10, 20, 30] {
        let model = if pct == 0 {
            MemoryModel::min()
        } else {
            MemoryModel {
                hit_latency: 1,
                miss_rate: pct as f64 / 100.0,
                miss_penalty: (20, 100),
                banks: 0,
            }
        };
        let mut cycles = [0.0f64; 2];
        for (i, mode) in [MachineMode::Sts, MachineMode::Coupled]
            .into_iter()
            .enumerate()
        {
            let mut total = 0u64;
            let seeds = if pct == 0 { 1 } else { 3 };
            for seed in 0..seeds {
                let config = MachineConfig::baseline().with_memory(model).with_seed(seed);
                total += run_benchmark(&bench, mode, config)?.stats.cycles;
            }
            cycles[i] = total as f64 / seeds as f64;
        }
        if pct == 0 {
            base = cycles;
        }
        println!(
            "{:>8}%  {:>12.0} {:>8.2}x  {:>12.0} {:>8.2}x",
            pct,
            cycles[0],
            cycles[0] / base[0],
            cycles[1],
            cycles[1] / base[1],
        );
    }
    println!("\nThe coupled machine's slowdown grows far more slowly: other");
    println!("threads execute while one waits on a long-latency reference.");
    Ok(())
}
