//! Thread contexts: instruction pointer, per-row issue state, and the
//! distributed register set.

use crate::regfile::RegFileSet;
use pc_isa::SegmentId;
use std::fmt;

/// Identifies a thread within one simulation (dense, in spawn order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Fetching and issuing operations.
    Running,
    /// Current row fully issued; waiting for its branch to resolve before
    /// fetching the next row.
    WaitBranch,
    /// Terminated (explicit `halt` or fell off the end of its segment).
    Halted,
}

/// One hardware thread context.
#[derive(Debug, Clone)]
pub struct Thread {
    /// The thread's id (== index in the machine's thread table).
    pub id: ThreadId,
    /// The code segment being executed.
    pub segment: SegmentId,
    /// Current row index.
    pub ip: u32,
    /// Issue flags for the current row's slots (parallel to
    /// `row.slots()`).
    pub issued: Vec<bool>,
    /// Count of `false` entries in `issued` — the machine's O(1) form of
    /// [`Thread::row_fully_issued`]. Maintained by `enter_row` and the
    /// machine's issue path.
    pub unissued: u32,
    /// Lifecycle state.
    pub state: ThreadState,
    /// True while a control-transfer operation from the current row is in
    /// flight.
    pub branch_pending: bool,
    /// Arbitration priority: lower wins under
    /// [`pc_isa::ArbitrationPolicy::FixedPriority`]. Defaults to spawn
    /// order.
    pub priority: u32,
    /// The distributed register set.
    pub regs: RegFileSet,
    /// Operations this thread has issued (statistics).
    pub ops_issued: u64,
    /// Outstanding memory references: `(token, address, is_store)`.
    /// Synchronizing references and `fork` wait for this to drain
    /// (fence semantics), and same-address store ordering is enforced
    /// against it.
    pub outstanding_mem: Vec<(u64, u64, bool)>,
    /// Cycle the thread was spawned.
    pub spawned_at: u64,
    /// Cycle the thread halted (meaningful once halted).
    pub halted_at: u64,
    /// Cycle of the thread's most recent issue (stall attribution reads
    /// this to tell busy cycles from stalled ones).
    pub last_issue: u64,
    /// Readiness cache for the event-driven issue engine: bit `k` is set
    /// when the current row has an unissued slot on unit `k` whose
    /// operands (and memory-ordering constraints) allow issue. Valid
    /// only while `ready_dirty` is false; the machine rebuilds it lazily.
    pub ready_units: u64,
    /// Set by every event that can change this thread's readiness
    /// (row entry, own issue, writeback into its registers, memory
    /// completion); cleared when `ready_units` is rebuilt.
    pub ready_dirty: bool,
}

impl Thread {
    /// Creates a thread at row 0 of `segment`.
    pub fn new(id: ThreadId, segment: SegmentId, regs: RegFileSet, now: u64) -> Self {
        Thread {
            id,
            segment,
            ip: 0,
            issued: Vec::new(),
            unissued: 0,
            state: ThreadState::Running,
            branch_pending: false,
            priority: id.0,
            regs,
            ops_issued: 0,
            outstanding_mem: Vec::new(),
            spawned_at: now,
            halted_at: 0,
            last_issue: u64::MAX,
            ready_units: 0,
            ready_dirty: true,
        }
    }

    /// True unless halted.
    pub fn is_alive(&self) -> bool {
        self.state != ThreadState::Halted
    }

    /// Marks the thread halted at `now` and frees its registers.
    pub fn halt(&mut self, now: u64) {
        self.state = ThreadState::Halted;
        self.halted_at = now;
        self.regs.clear();
    }

    /// Resets per-row issue flags for a row of `n` slots.
    pub fn enter_row(&mut self, n: usize) {
        self.issued.clear();
        self.issued.resize(n, false);
        self.unissued = n as u32;
        self.branch_pending = false;
        self.ready_dirty = true;
    }

    /// True when every slot of the current row has issued.
    pub fn row_fully_issued(&self) -> bool {
        self.issued.iter().all(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = Thread::new(ThreadId(3), SegmentId(0), RegFileSet::default(), 10);
        assert!(t.is_alive());
        assert_eq!(t.priority, 3);
        assert_eq!(t.spawned_at, 10);
        t.halt(20);
        assert!(!t.is_alive());
        assert_eq!(t.halted_at, 20);
    }

    #[test]
    fn row_issue_tracking() {
        let mut t = Thread::new(ThreadId(0), SegmentId(0), RegFileSet::default(), 0);
        t.enter_row(2);
        assert!(!t.row_fully_issued());
        t.issued[0] = true;
        assert!(!t.row_fully_issued());
        t.issued[1] = true;
        assert!(t.row_fully_issued());
        t.enter_row(0);
        assert!(t.row_fully_issued()); // empty rows are trivially complete
    }

    #[test]
    fn thread_id_display() {
        assert_eq!(ThreadId(7).to_string(), "t7");
    }
}
