//! Table 2 / Figure 4 — baseline cycle counts for the five machine modes.
//!
//! Prints the regenerated table once, then times one full
//! compile+simulate+validate pipeline per benchmark × mode.

use coupling::experiments::baseline;
use coupling::{benchmarks, run_benchmark, MachineMode};
use criterion::{criterion_group, criterion_main, Criterion};
use pc_isa::MachineConfig;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let results = baseline::run().expect("baseline experiment");
    println!("\n{}", results.table2().render());

    let mut g = c.benchmark_group("table2_baseline");
    g.sample_size(pc_bench::SAMPLES)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for b in benchmarks::all() {
        // LUD takes ~100 ms/run; bench the fast benchmarks per mode and
        // LUD once in Coupled mode.
        let modes: &[MachineMode] = if b.name == "LUD" {
            &[MachineMode::Coupled]
        } else {
            &[MachineMode::Seq, MachineMode::Sts, MachineMode::Coupled]
        };
        for &mode in modes {
            if b.source(mode).is_none() {
                continue;
            }
            g.bench_function(format!("{}/{}", b.name, mode.label()), |bench| {
                bench.iter(|| run_benchmark(&b, mode, MachineConfig::baseline()).expect("run"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
