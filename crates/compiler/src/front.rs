//! Front end: top-level forms, compile-time constants, and procedure
//! inlining.
//!
//! Top-level forms:
//!
//! * `(global name int|float|(array int N)|(array float N))`
//! * `(const name expr)` — folded at compile time
//! * `(defun name (params…) body…)` — procedures are implemented as
//!   macro-expansions (paper §3): every call site is inlined, with
//!   alpha-renaming to prevent capture
//! * `(defun main () …)` — the entry thread
//!
//! The front end produces an [`crate::ast::Module`] with no remaining calls.

use crate::ast::{
    BinOp, Expr, GlobalDecl, LoopMeta, Module, Spanned, SrcSpan, Stmt, Ty, UnOp, Unroll,
};
use crate::error::{CompileError, Result};
use crate::sexpr::{self, Atom, Node, Sexpr};
use pc_isa::{LoadFlavor, StoreFlavor};
use std::collections::HashMap;

/// Maximum procedure-expansion depth (procedures may not recurse).
const MAX_DEPTH: usize = 64;

/// Parses and expands a source file into a [`Module`].
///
/// # Errors
/// Any syntactic or expansion-time error, with a source line.
pub fn expand(src: &str) -> Result<Module> {
    let forms = sexpr::parse(src)?;
    let mut globals = Vec::new();
    let mut consts: HashMap<String, Expr> = HashMap::new();
    let mut defuns: HashMap<String, (Vec<String>, Vec<Sexpr>)> = HashMap::new();
    let mut main: Option<Vec<Sexpr>> = None;

    for form in &forms {
        let xs = form.list()?;
        let head = form
            .head()
            .ok_or_else(|| CompileError::at(form.line, "expected a top-level form"))?;
        match head {
            "global" => {
                if xs.len() != 3 {
                    return Err(CompileError::at(form.line, "(global name type)"));
                }
                let name = xs[1].sym()?.to_string();
                let (elem, len) = parse_type(&xs[2])?;
                globals.push(GlobalDecl { name, elem, len });
            }
            "const" => {
                if xs.len() != 3 {
                    return Err(CompileError::at(form.line, "(const name expr)"));
                }
                let name = xs[1].sym()?.to_string();
                let value = eval_const(&xs[2], &consts)?;
                consts.insert(name, value);
            }
            "defun" => {
                if xs.len() < 3 {
                    return Err(CompileError::at(form.line, "(defun name (params) body...)"));
                }
                let name = xs[1].sym()?.to_string();
                let params: Vec<String> = xs[2]
                    .list()?
                    .iter()
                    .map(|p| p.sym().map(str::to_string))
                    .collect::<Result<_>>()?;
                let body = xs[3..].to_vec();
                if name == "main" {
                    if !params.is_empty() {
                        return Err(CompileError::at(form.line, "main takes no parameters"));
                    }
                    main = Some(body);
                } else {
                    defuns.insert(name, (params, body));
                }
            }
            other => {
                return Err(CompileError::at(
                    form.line,
                    format!("unknown top-level form '{other}'"),
                ))
            }
        }
    }

    let main = main.ok_or_else(|| CompileError::new("no (defun main () ...) found"))?;
    let mut cx = Ctx {
        consts,
        defuns,
        scopes: vec![HashMap::new()],
        gensym: 0,
        depth: 0,
        loops: Vec::new(),
        loop_stack: Vec::new(),
    };
    let body = cx.stmts(&main)?;
    Ok(Module {
        globals,
        main: body,
        loops: cx.loops,
    })
}

fn parse_type(sx: &Sexpr) -> Result<(Ty, u64)> {
    match &sx.node {
        Node::Atom(Atom::Sym(s)) if s == "int" => Ok((Ty::Int, 1)),
        Node::Atom(Atom::Sym(s)) if s == "float" => Ok((Ty::Float, 1)),
        Node::List(xs) if xs.len() == 3 && xs[0].is_sym("array") => {
            let elem = match xs[1].sym()? {
                "int" => Ty::Int,
                "float" => Ty::Float,
                other => {
                    return Err(CompileError::at(
                        sx.line,
                        format!("bad element type '{other}'"),
                    ))
                }
            };
            let len = match &xs[2].node {
                Node::Atom(Atom::Int(n)) if *n > 0 => *n as u64,
                _ => {
                    return Err(CompileError::at(
                        sx.line,
                        "array length must be a positive integer",
                    ))
                }
            };
            Ok((elem, len))
        }
        _ => Err(CompileError::at(
            sx.line,
            "type must be int, float, or (array <elem> <len>)",
        )),
    }
}

/// Evaluates a constant expression over literals and earlier constants.
fn eval_const(sx: &Sexpr, consts: &HashMap<String, Expr>) -> Result<Expr> {
    match &sx.node {
        Node::Atom(Atom::Int(i)) => Ok(Expr::Int(*i)),
        Node::Atom(Atom::Float(f)) => Ok(Expr::Float(*f)),
        Node::Atom(Atom::Sym(s)) => consts
            .get(s)
            .cloned()
            .ok_or_else(|| CompileError::at(sx.line, format!("unknown constant '{s}'"))),
        Node::List(xs) if xs.len() == 3 => {
            let op = xs[0].sym()?;
            let a = eval_const(&xs[1], consts)?;
            let b = eval_const(&xs[2], consts)?;
            match (a, b) {
                (Expr::Int(a), Expr::Int(b)) => {
                    let v = match op {
                        "+" => a + b,
                        "-" => a - b,
                        "*" => a * b,
                        "/" if b != 0 => a / b,
                        "%" if b != 0 => a % b,
                        _ => return Err(CompileError::at(sx.line, "bad constant expression")),
                    };
                    Ok(Expr::Int(v))
                }
                (Expr::Float(a), Expr::Float(b)) => {
                    let v = match op {
                        "+" => a + b,
                        "-" => a - b,
                        "*" => a * b,
                        "/" => a / b,
                        _ => return Err(CompileError::at(sx.line, "bad constant expression")),
                    };
                    Ok(Expr::Float(v))
                }
                _ => Err(CompileError::at(sx.line, "mixed-type constant expression")),
            }
        }
        _ => Err(CompileError::at(sx.line, "bad constant expression")),
    }
}

struct Ctx {
    consts: HashMap<String, Expr>,
    defuns: HashMap<String, (Vec<String>, Vec<Sexpr>)>,
    /// Alpha-renaming scopes: source name → unique name.
    scopes: Vec<HashMap<String, String>>,
    gensym: u64,
    depth: usize,
    /// Source loops in discovery order (becomes [`Module::loops`]).
    loops: Vec<LoopMeta>,
    /// Innermost-last stack of enclosing loop ids.
    loop_stack: Vec<u32>,
}

impl Ctx {
    fn fresh(&mut self, base: &str) -> String {
        self.gensym += 1;
        format!("{base}%{}", self.gensym)
    }

    fn bind(&mut self, name: &str) -> String {
        let unique = self.fresh(name);
        self.scopes
            .last_mut()
            .expect("scope stack")
            .insert(name.to_string(), unique.clone());
        unique
    }

    fn resolve(&self, name: &str) -> Option<String> {
        for scope in self.scopes.iter().rev() {
            if let Some(u) = scope.get(name) {
                return Some(u.clone());
            }
        }
        None
    }

    fn stmts(&mut self, body: &[Sexpr]) -> Result<Vec<Spanned>> {
        body.iter().map(|s| self.stmt(s)).collect()
    }

    /// Records a source loop, returning its id.
    fn enter_loop(&mut self, name: &str, line: u32) -> u32 {
        let id = self.loops.len() as u32;
        self.loops.push(LoopMeta {
            name: name.to_string(),
            line,
        });
        self.loop_stack.push(id);
        id
    }

    fn exit_loop(&mut self) {
        self.loop_stack.pop();
    }

    /// Builds one statement, stamping it with its source span and the
    /// innermost enclosing loop at the *call site* (so statements inlined
    /// from procedures attribute to the loop that executes them).
    fn stmt(&mut self, sx: &Sexpr) -> Result<Spanned> {
        let span = SrcSpan {
            line: sx.line,
            col: sx.col,
            loop_id: self.loop_stack.last().copied(),
        };
        let node = self.stmt_node(sx)?;
        Ok(Spanned { span, node })
    }

    fn stmt_node(&mut self, sx: &Sexpr) -> Result<Stmt> {
        let Some(head) = sx.head() else {
            // Bare expression statement (atom or non-symbol-headed list).
            return Ok(Stmt::Expr(self.expr(sx)?));
        };
        let xs = sx.list()?;
        match head {
            "let" => {
                self.scopes.push(HashMap::new());
                let mut bindings = Vec::new();
                for b in xs
                    .get(1)
                    .ok_or_else(|| CompileError::at(sx.line, "(let ((x e)...) body...)"))?
                    .list()?
                {
                    let pair = b.list()?;
                    if pair.len() != 2 {
                        return Err(CompileError::at(b.line, "binding must be (name expr)"));
                    }
                    let init = self.expr(&pair[1])?; // evaluated before binding
                    let unique = self.bind(pair[0].sym()?);
                    bindings.push((unique, init));
                }
                let body = self.stmts(&xs[2..])?;
                self.scopes.pop();
                Ok(Stmt::Let { bindings, body })
            }
            "set" => {
                if xs.len() != 3 {
                    return Err(CompileError::at(sx.line, "(set name expr)"));
                }
                let raw = xs[1].sym()?;
                let name = self.resolve(raw).unwrap_or_else(|| raw.to_string());
                Ok(Stmt::Set {
                    name,
                    value: self.expr(&xs[2])?,
                })
            }
            "aset" | "aset-wf" | "produce" => {
                if xs.len() != 4 {
                    return Err(CompileError::at(sx.line, format!("({head} sym idx value)")));
                }
                let flavor = match head {
                    "aset" => StoreFlavor::Plain,
                    "aset-wf" => StoreFlavor::WaitFull,
                    _ => StoreFlavor::Produce,
                };
                Ok(Stmt::ASet {
                    sym: xs[1].sym()?.to_string(),
                    idx: self.expr(&xs[2])?,
                    value: self.expr(&xs[3])?,
                    flavor,
                })
            }
            "if" => {
                if xs.len() != 3 && xs.len() != 4 {
                    return Err(CompileError::at(sx.line, "(if cond then [else])"));
                }
                let cond = self.expr(&xs[1])?;
                let then_ = vec![self.stmt(&xs[2])?];
                let else_ = if xs.len() == 4 {
                    vec![self.stmt(&xs[3])?]
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_, else_ })
            }
            "begin" => Ok(Stmt::Let {
                bindings: Vec::new(),
                body: self.stmts(&xs[1..])?,
            }),
            "while" => {
                if xs.len() < 2 {
                    return Err(CompileError::at(sx.line, "(while cond body...)"));
                }
                let cond = self.expr(&xs[1])?;
                self.enter_loop("while", sx.line);
                let body = self.stmts(&xs[2..]);
                self.exit_loop();
                Ok(Stmt::While { cond, body: body? })
            }
            "for" | "forall" => {
                let spec = xs
                    .get(1)
                    .ok_or_else(|| CompileError::at(sx.line, "missing loop spec"))?
                    .list()?;
                if spec.len() != 3 {
                    return Err(CompileError::at(
                        sx.line,
                        format!("({head} (i start end) ...)"),
                    ));
                }
                let start = self.expr(&spec[1])?;
                let end = self.expr(&spec[2])?;
                self.scopes.push(HashMap::new());
                let src_var = spec[0].sym()?.to_string();
                let var = self.bind(&src_var);
                self.enter_loop(&src_var, sx.line);
                // Optional :unroll directive.
                let mut body_start = 2;
                let mut unroll = Unroll::None;
                if head == "for" {
                    if let Some(Sexpr {
                        node: Node::Atom(Atom::Key(k)),
                        line,
                        ..
                    }) = xs.get(2)
                    {
                        if k != "unroll" {
                            return Err(CompileError::at(*line, format!("unknown directive :{k}")));
                        }
                        let mode = xs
                            .get(3)
                            .ok_or_else(|| CompileError::at(*line, ":unroll needs an argument"))?;
                        if mode.is_sym("full") {
                            unroll = Unroll::Full;
                        } else if let Node::Atom(Atom::Int(k)) = &mode.node {
                            if *k < 2 {
                                return Err(CompileError::at(
                                    mode.line,
                                    ":unroll factor must be at least 2",
                                ));
                            }
                            unroll = Unroll::By(*k as u32);
                        } else {
                            return Err(CompileError::at(
                                mode.line,
                                ":unroll takes 'full' or an integer factor",
                            ));
                        }
                        body_start = 4;
                    }
                }
                let body = self.stmts(&xs[body_start..]);
                self.exit_loop();
                self.scopes.pop();
                let body = body?;
                if head == "for" {
                    Ok(Stmt::For {
                        var,
                        start,
                        end,
                        unroll,
                        body,
                    })
                } else {
                    Ok(Stmt::Forall {
                        var,
                        start,
                        end,
                        body,
                    })
                }
            }
            "fork" => Ok(Stmt::Fork {
                body: self.stmts(&xs[1..])?,
            }),
            "probe" => {
                let id = match xs.get(1).map(|x| &x.node) {
                    Some(Node::Atom(Atom::Int(i))) if *i >= 0 => *i as u32,
                    _ => return Err(CompileError::at(sx.line, "(probe <nonnegative int>)")),
                };
                Ok(Stmt::Probe(id))
            }
            name if self.defuns.contains_key(name) => self.inline_call(sx),
            _ => Ok(Stmt::Expr(self.expr(sx)?)),
        }
    }

    /// Expands a procedure call into a `let` over its renamed body.
    fn inline_call(&mut self, sx: &Sexpr) -> Result<Stmt> {
        if self.depth >= MAX_DEPTH {
            return Err(CompileError::at(
                sx.line,
                "procedure expansion too deep (recursion is not supported)",
            ));
        }
        let xs = sx.list()?;
        let name = sx.head().expect("checked by caller");
        let (params, body) = self.defuns.get(name).cloned().expect("checked");
        if xs.len() - 1 != params.len() {
            return Err(CompileError::at(
                sx.line,
                format!(
                    "{name} expects {} arguments, got {}",
                    params.len(),
                    xs.len() - 1
                ),
            ));
        }
        // Evaluate arguments in the caller's scope, then bind params.
        let inits: Vec<Expr> = xs[1..]
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<_>>()?;
        self.scopes.push(HashMap::new());
        let mut bindings = Vec::new();
        for (p, init) in params.iter().zip(inits) {
            bindings.push((self.bind(p), init));
        }
        self.depth += 1;
        let body = self.stmts(&body)?;
        self.depth -= 1;
        self.scopes.pop();
        Ok(Stmt::Let { bindings, body })
    }

    fn expr(&mut self, sx: &Sexpr) -> Result<Expr> {
        match &sx.node {
            Node::Atom(Atom::Int(i)) => Ok(Expr::Int(*i)),
            Node::Atom(Atom::Float(f)) => Ok(Expr::Float(*f)),
            Node::Atom(Atom::Key(k)) => Err(CompileError::at(
                sx.line,
                format!("unexpected keyword :{k}"),
            )),
            Node::Atom(Atom::Sym(s)) => {
                if let Some(c) = self.consts.get(s) {
                    return Ok(c.clone());
                }
                Ok(Expr::Var(self.resolve(s).unwrap_or_else(|| s.clone())))
            }
            Node::List(xs) => {
                let head = sx.head().ok_or_else(|| {
                    CompileError::at(sx.line, "expression list must start with an operator")
                })?;
                match head {
                    "+" | "-" | "*" | "/" | "%" | "<" | "<=" | ">" | ">=" | "=" | "!=" | "and"
                    | "or" | "xor" | "shl" | "shr" => {
                        if head == "-" && xs.len() == 2 {
                            return Ok(Expr::Un(UnOp::Neg, Box::new(self.expr(&xs[1])?)));
                        }
                        if xs.len() < 3 {
                            return Err(CompileError::at(
                                sx.line,
                                format!("'{head}' needs at least two operands"),
                            ));
                        }
                        let op = bin_op(head).expect("matched above");
                        // Left-fold n-ary +, *, and, or.
                        let mut acc = self.expr(&xs[1])?;
                        for x in &xs[2..] {
                            acc = Expr::Bin(op, Box::new(acc), Box::new(self.expr(x)?));
                        }
                        if xs.len() > 3
                            && !matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or)
                        {
                            return Err(CompileError::at(
                                sx.line,
                                format!("'{head}' takes exactly two operands"),
                            ));
                        }
                        Ok(acc)
                    }
                    "not" | "float" | "int" | "fabs" => {
                        if xs.len() != 2 {
                            return Err(CompileError::at(sx.line, format!("({head} x)")));
                        }
                        let op = match head {
                            "not" => UnOp::Not,
                            "float" => UnOp::ToFloat,
                            "int" => UnOp::ToInt,
                            _ => UnOp::Fabs,
                        };
                        Ok(Expr::Un(op, Box::new(self.expr(&xs[1])?)))
                    }
                    "aref" | "aref-wf" | "consume" => {
                        if xs.len() != 3 {
                            return Err(CompileError::at(sx.line, format!("({head} sym idx)")));
                        }
                        let flavor = match head {
                            "aref" => LoadFlavor::Plain,
                            "aref-wf" => LoadFlavor::WaitFull,
                            _ => LoadFlavor::Consume,
                        };
                        Ok(Expr::ARef {
                            sym: xs[1].sym()?.to_string(),
                            idx: Box::new(self.expr(&xs[2])?),
                            flavor,
                        })
                    }
                    "addr-of" => {
                        if xs.len() != 2 {
                            return Err(CompileError::at(sx.line, "(addr-of sym)"));
                        }
                        Ok(Expr::AddrOf(xs[1].sym()?.to_string()))
                    }
                    other if self.defuns.contains_key(other) => Err(CompileError::at(
                        sx.line,
                        format!("procedure '{other}' may only be called in statement position"),
                    )),
                    other => Err(CompileError::at(
                        sx.line,
                        format!("unknown operator '{other}'"),
                    )),
                }
            }
        }
    }
}

fn bin_op(head: &str) -> Option<BinOp> {
    Some(match head {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "=" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_main() {
        let m = expand("(defun main () (set x 1))").unwrap();
        assert!(m.globals.is_empty());
        assert_eq!(m.main.len(), 1);
    }

    #[test]
    fn globals_and_arrays() {
        let m = expand("(global a (array float 81)) (global n int) (defun main () (aset a 0 1.5))")
            .unwrap();
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0].len, 81);
        assert_eq!(m.globals[0].elem, Ty::Float);
        assert_eq!(m.globals[1].len, 1);
    }

    #[test]
    fn consts_fold_and_substitute() {
        let m = expand("(const n 9) (const n2 (* n n)) (defun main () (set x n2))").unwrap();
        match &m.main[0].node {
            Stmt::Set { value, .. } => assert_eq!(*value, Expr::Int(81)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn procedures_inline_with_renaming() {
        let m = expand(
            "(defun inc (x) (set y (+ x 1)))
             (defun main () (let ((x 5)) (inc x) (set z x)))",
        )
        .unwrap();
        // main: Let { x%1 = 5, [ Let { x%2 = x%1 } [set y ...], set z ] }
        let Stmt::Let { bindings, body } = &m.main[0].node else {
            panic!()
        };
        assert!(bindings[0].0.starts_with("x%"));
        let Stmt::Let {
            bindings: inner, ..
        } = &body[0].node
        else {
            panic!()
        };
        // The parameter was renamed differently from the caller's local.
        assert_ne!(inner[0].0, bindings[0].0);
        assert_eq!(inner[0].1, Expr::Var(bindings[0].0.clone()));
    }

    #[test]
    fn recursion_is_rejected() {
        let err = expand("(defun f (x) (f x)) (defun main () (f 1))").unwrap_err();
        assert!(err.msg.contains("too deep"), "{err}");
    }

    #[test]
    fn unroll_directive() {
        let m = expand("(defun main () (for (i 0 4) :unroll full (set x i)))").unwrap();
        let Stmt::For { unroll, .. } = &m.main[0].node else {
            panic!()
        };
        assert_eq!(*unroll, Unroll::Full);
    }

    #[test]
    fn nary_plus_folds_left() {
        let m = expand("(defun main () (set x (+ 1 2 3)))").unwrap();
        let Stmt::Set { value, .. } = &m.main[0].node else {
            panic!()
        };
        // ((1 + 2) + 3)
        let Expr::Bin(BinOp::Add, l, _) = value else {
            panic!()
        };
        assert!(matches!(**l, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn sync_forms_map_to_flavors() {
        let m = expand(
            "(global f (array int 4))
             (defun main () (produce f 0 1) (set x (consume f 0)) (aset-wf f 1 2))",
        )
        .unwrap();
        assert!(matches!(
            m.main[0].node,
            Stmt::ASet {
                flavor: StoreFlavor::Produce,
                ..
            }
        ));
        let Stmt::Set { value, .. } = &m.main[1].node else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::ARef {
                flavor: LoadFlavor::Consume,
                ..
            }
        ));
        assert!(matches!(
            m.main[2].node,
            Stmt::ASet {
                flavor: StoreFlavor::WaitFull,
                ..
            }
        ));
    }

    #[test]
    fn forall_and_fork_parse() {
        let m = expand("(defun main () (forall (i 0 4) (set x i)) (fork (set y 1)))").unwrap();
        assert!(matches!(m.main[0].node, Stmt::Forall { .. }));
        assert!(matches!(m.main[1].node, Stmt::Fork { .. }));
    }

    #[test]
    fn errors_have_lines() {
        let err = expand("(defun main ()\n (bogus 1))").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn unary_minus() {
        let m = expand("(defun main () (set x (- 5)))").unwrap();
        let Stmt::Set { value, .. } = &m.main[0].node else {
            panic!()
        };
        assert!(matches!(value, Expr::Un(UnOp::Neg, _)));
    }

    #[test]
    fn wrong_arity_call_is_rejected() {
        let err = expand("(defun f (a b) (set x a)) (defun main () (f 1))").unwrap_err();
        assert!(err.msg.contains("expects 2"), "{err}");
    }

    #[test]
    fn expression_position_call_is_rejected() {
        let err = expand("(defun f (a) (set x a)) (defun main () (set y (f 1)))").unwrap_err();
        assert!(err.msg.contains("statement position"), "{err}");
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;

    #[test]
    fn shadowing_in_nested_lets_resolves_innermost() {
        let m = expand(
            "(defun main ()
               (let ((x 1))
                 (let ((x 2))
                   (set y x))
                 (set z x)))",
        )
        .unwrap();
        // y gets inner x, z gets outer x: the renamed names must differ.
        fn find_sets(stmts: &[Spanned], out: &mut Vec<(String, Expr)>) {
            for s in stmts {
                match &s.node {
                    Stmt::Set { name, value } => out.push((name.clone(), value.clone())),
                    Stmt::Let { body, .. } => find_sets(body, out),
                    _ => {}
                }
            }
        }
        let mut sets = Vec::new();
        find_sets(&m.main, &mut sets);
        let y_src = match &sets.iter().find(|(n, _)| n.starts_with('y')).unwrap().1 {
            Expr::Var(v) => v.clone(),
            other => panic!("{other:?}"),
        };
        let z_src = match &sets.iter().find(|(n, _)| n.starts_with('z')).unwrap().1 {
            Expr::Var(v) => v.clone(),
            other => panic!("{other:?}"),
        };
        assert_ne!(y_src, z_src);
    }

    #[test]
    fn loop_variable_shadows_outer_binding() {
        let m = expand(
            "(defun main ()
               (let ((i 9))
                 (for (i 0 3) (set a i))
                 (set b i)))",
        )
        .unwrap();
        let txt = format!("{m:?}");
        // Two distinct renamed i's exist.
        assert!(txt.matches("i%").count() >= 2, "{txt}");
    }

    #[test]
    fn nested_procedure_expansion() {
        let m = expand(
            "(defun g (v) (set out (+ v 1)))
             (defun f (u) (g (* u 2)))
             (defun main () (f 3))",
        )
        .unwrap();
        // Fully expanded: a let (f) containing a let (g) containing a set.
        let Stmt::Let { body, .. } = &m.main[0].node else {
            panic!()
        };
        let Stmt::Let { body: inner, .. } = &body[0].node else {
            panic!()
        };
        assert!(matches!(inner[0].node, Stmt::Set { .. }));
    }

    #[test]
    fn procedures_can_call_multiple_times() {
        let m = expand(
            "(defun inc (x) (set c (+ x 1)))
             (defun main () (inc 1) (inc 2) (inc 3))",
        )
        .unwrap();
        assert_eq!(m.main.len(), 3);
    }

    #[test]
    fn duplicate_global_is_last_wins_or_error_free() {
        // Two globals with distinct names both recorded in order.
        let m =
            expand("(global a int) (global b (array float 2)) (defun main () (set a 1))").unwrap();
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0].name, "a");
        assert_eq!(m.globals[1].len, 2);
    }

    #[test]
    fn error_messages_name_the_problem() {
        for (src, needle) in [
            ("(defun main () (if))", "(if cond then [else])"),
            ("(defun main () (probe x))", "probe"),
            ("(defun main () (aset))", "aset"),
            ("(defun main (x) 1)", "main takes no parameters"),
            ("(widget)", "unknown top-level form"),
            (
                "(global g (array int 0)) (defun main () (probe 0))",
                "positive",
            ),
            (
                "(const c (+ 1 2.0)) (defun main () (probe 0))",
                "mixed-type",
            ),
            (
                "(const c (/ 1 0)) (defun main () (probe 0))",
                "bad constant",
            ),
        ] {
            let err = expand(src).unwrap_err();
            assert!(
                err.msg.contains(needle),
                "source {src}: expected '{needle}' in '{}'",
                err.msg
            );
        }
    }

    #[test]
    fn keywords_rejected_in_expressions() {
        let err = expand("(defun main () (set x :unroll))").unwrap_err();
        assert!(err.msg.contains("keyword"), "{err}");
    }
}
