//! # pc-bench — the paper's evaluation as Criterion benches
//!
//! One bench target per table/figure. Each prints the regenerated
//! table/series once, then times representative runs so regressions in
//! simulator or compiler performance are visible:
//!
//! ```sh
//! cargo bench -p pc-bench --bench table2_baseline
//! cargo bench -p pc-bench --bench fig6_comm
//! ```

/// Criterion sample count used by all benches (whole-program simulations
/// are long; statistical precision beyond ~10 samples buys nothing).
pub const SAMPLES: usize = 10;

/// True when `PC_BENCH_QUICK` is set (CI smoke mode): benches shrink
/// their sample counts and measurement budgets so the whole target runs
/// in seconds instead of minutes.
pub fn quick_mode() -> bool {
    std::env::var_os("PC_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// One case of a `BENCH_simcore.json` baseline: the identifier plus the
/// throughput number the perf gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCase {
    /// `simcore/<Bench>/<Mode>` identifier.
    pub id: String,
    /// Issue engine that produced the case (`decoded` / `event` /
    /// `scan`). Schema-v3 documents predate the field; they parse as
    /// `decoded` — in v3 the default engine was the only one measured.
    pub engine: String,
    /// Mean wall time per full pipeline run, nanoseconds.
    pub mean_ns: u64,
    /// Simulated machine cycles per run.
    pub cycles_per_run: u64,
    /// The gated metric: simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
}

/// Scans the given field out of one JSON object body. The baseline files
/// are written by `benches/simcore.rs` in a fixed shape, so a string scan
/// (no serde in the offline build) is sufficient and is unit-tested
/// against the writer's format.
fn scan_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &obj[obj.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn scan_string<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let raw = scan_field(obj, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// Parses the `cases` array of a `BENCH_simcore.json` document.
///
/// # Errors
/// Returns a description of the first malformed case, or of a missing
/// `cases` array.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineCase>, String> {
    let start = json
        .find("\"cases\":")
        .ok_or_else(|| "no \"cases\" array".to_string())?;
    let body = &json[start..];
    let open = body.find('[').ok_or("cases is not an array")?;
    let close = body.find(']').ok_or("unterminated cases array")?;
    let mut cases = Vec::new();
    let mut rest = &body[open + 1..close];
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .ok_or("unterminated case object")?;
        let obj = &rest[obj_start..obj_start + obj_end + 1];
        let id = scan_string(obj, "id")
            .ok_or_else(|| format!("case without id: {obj}"))?
            .to_string();
        let num = |key: &str| -> Result<f64, String> {
            scan_field(obj, key)
                .ok_or_else(|| format!("{id}: missing {key}"))?
                .parse::<f64>()
                .map_err(|e| format!("{id}: bad {key}: {e}"))
        };
        cases.push(BaselineCase {
            sim_cycles_per_sec: num("sim_cycles_per_sec")?,
            mean_ns: num("mean_ns")? as u64,
            cycles_per_run: num("cycles_per_run")? as u64,
            engine: scan_string(obj, "engine").unwrap_or("decoded").to_string(),
            id,
        });
        rest = &rest[obj_start + obj_end + 1..];
    }
    if cases.is_empty() {
        return Err("cases array is empty".to_string());
    }
    Ok(cases)
}

/// One shard's record inside the `table2_sweep` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepShardStat {
    /// Shard selector, `"k/n"`.
    pub shard: String,
    /// Wall-clock milliseconds for the shard.
    pub wall_ms: f64,
    /// Cells served from the result cache.
    pub hits: u64,
    /// Cells computed fresh.
    pub misses: u64,
}

/// The `table2_sweep` block of a v3 `BENCH_simcore.json`: what the sweep
/// engine actually did — jobs used, wall-clock per shard, and cache
/// hit/miss counts for the cold and warm passes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Worker threads the sweep ran with.
    pub jobs: u64,
    /// Cells in the swept grid.
    pub cells: u64,
    /// Serial (jobs=1) wall-clock milliseconds, best of N.
    pub serial_ms: f64,
    /// Parallel wall-clock milliseconds (absent on single-CPU hosts —
    /// recording a fictitious "speedup" there would be dishonest).
    pub parallel_ms: Option<f64>,
    /// serial_ms / parallel_ms, when both were measured.
    pub speedup: Option<f64>,
    /// Per-shard wall-clock and cache traffic for the cold pass.
    pub shards: Vec<SweepShardStat>,
    /// (hits, misses) of the cold pass over the whole grid.
    pub cold: (u64, u64),
    /// (hits, misses) of the warm rerun — misses must be 0.
    pub warm: (u64, u64),
}

/// Extracts the brace- or bracket-delimited value following `"key":`,
/// balancing nesting. The writer never emits braces inside strings, so
/// plain depth counting is sufficient (unit-tested against the writer).
fn extract_delimited<'a>(text: &'a str, key: &str, open: char, close: char) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = text[text.find(&tag)? + tag.len()..].trim_start();
    if !rest.starts_with(open) {
        return None;
    }
    let mut depth = 0usize;
    for (i, ch) in rest.char_indices() {
        if ch == open {
            depth += 1;
        } else if ch == close {
            depth -= 1;
            if depth == 0 {
                return Some(&rest[..=i]);
            }
        }
    }
    None
}

/// Parses the `table2_sweep` block of a v3 `BENCH_simcore.json`.
///
/// # Errors
/// Returns a description of the first missing or malformed field.
pub fn parse_sweep_stats(json: &str) -> Result<SweepStats, String> {
    let obj = extract_delimited(json, "table2_sweep", '{', '}')
        .ok_or_else(|| "no \"table2_sweep\" object".to_string())?;
    let num = |key: &str| -> Result<f64, String> {
        scan_field(obj, key)
            .ok_or_else(|| format!("table2_sweep: missing {key}"))?
            .parse::<f64>()
            .map_err(|e| format!("table2_sweep: bad {key}: {e}"))
    };
    let pair = |key: &str| -> Result<(u64, u64), String> {
        let sub = extract_delimited(obj, key, '{', '}')
            .ok_or_else(|| format!("table2_sweep: missing {key}"))?;
        let get = |k: &str| -> Result<u64, String> {
            scan_field(sub, k)
                .ok_or_else(|| format!("table2_sweep.{key}: missing {k}"))?
                .parse::<u64>()
                .map_err(|e| format!("table2_sweep.{key}: bad {k}: {e}"))
        };
        Ok((get("hits")?, get("misses")?))
    };
    let mut shards = Vec::new();
    let mut rest = extract_delimited(obj, "shards", '[', ']')
        .ok_or_else(|| "table2_sweep: missing shards".to_string())?;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or("unterminated shard object")?;
        let sobj = &rest[start..start + end + 1];
        let get = |k: &str| -> Result<f64, String> {
            scan_field(sobj, k)
                .ok_or_else(|| format!("shard: missing {k}"))?
                .parse::<f64>()
                .map_err(|e| format!("shard: bad {k}: {e}"))
        };
        shards.push(SweepShardStat {
            shard: scan_string(sobj, "shard")
                .ok_or_else(|| format!("shard without selector: {sobj}"))?
                .to_string(),
            wall_ms: get("wall_ms")?,
            hits: get("hits")? as u64,
            misses: get("misses")? as u64,
        });
        rest = &rest[start + end + 1..];
    }
    Ok(SweepStats {
        jobs: num("jobs")? as u64,
        cells: num("cells")? as u64,
        serial_ms: num("serial_ms")?,
        parallel_ms: num("parallel_ms").ok(),
        speedup: num("speedup").ok(),
        shards,
        cold: pair("cold")?,
        warm: pair("warm")?,
    })
}

/// Compares `current` against `baseline`: one failure line per case whose
/// `sim_cycles_per_sec` dropped by more than `max_regress_pct` percent.
/// Cases present on only one side are reported as informational skips by
/// the caller, not failures — hardware and case sets drift.
pub fn regressions(
    baseline: &[BaselineCase],
    current: &[BaselineCase],
    max_regress_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.id == b.id) else {
            continue;
        };
        if b.sim_cycles_per_sec <= 0.0 {
            continue;
        }
        let drop_pct = 100.0 * (1.0 - c.sim_cycles_per_sec / b.sim_cycles_per_sec);
        if drop_pct > max_regress_pct {
            failures.push(format!(
                "{}: sim_cycles_per_sec {:.0} -> {:.0} ({drop_pct:.1}% regression, limit {max_regress_pct:.0}%)",
                b.id, b.sim_cycles_per_sec, c.sim_cycles_per_sec
            ));
        }
    }
    failures
}

/// Checks absolute throughput floors: every case whose id **ends with**
/// `pattern` must clear `min` simulated cycles per second. Suffix
/// matching lets `/Coupled` cover all plain Coupled cases without
/// catching derived ids like `.../Coupled/profiled`. A pattern matching
/// no case at all is itself a failure — a silent typo would gate
/// nothing.
pub fn floor_violations(current: &[BaselineCase], floors: &[(String, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (pattern, min) in floors {
        let mut matched = false;
        for c in current {
            if !c.id.ends_with(pattern.as_str()) {
                continue;
            }
            matched = true;
            if c.sim_cycles_per_sec < *min {
                failures.push(format!(
                    "{}: sim_cycles_per_sec {:.0} below floor {min:.0}",
                    c.id, c.sim_cycles_per_sec
                ));
            }
        }
        if !matched {
            failures.push(format!("floor {pattern}={min:.0}: no case matches"));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "simcore-baseline-v4",
  "host_cpus": 4,
  "cases": [
    {"id": "simcore/Matrix/STS", "engine": "decoded", "mean_ns": 1609547, "iterations": 1400, "cycles_per_run": 1598, "sim_cycles_per_sec": 992826},
    {"id": "simcore/Matrix/Coupled", "engine": "decoded", "mean_ns": 4714083, "iterations": 380, "cycles_per_run": 580, "sim_cycles_per_sec": 123036},
    {"id": "simcore/Matrix/Coupled/scan", "engine": "scan", "mean_ns": 9428166, "iterations": 190, "cycles_per_run": 580, "sim_cycles_per_sec": 61518}
  ],
  "table2_sweep": {
    "jobs": 4,
    "cells": 18,
    "serial_ms": 470.5,
    "parallel_ms": 232.1,
    "speedup": 2.03,
    "bit_identical": true,
    "shards": [
      {"shard": "1/2", "wall_ms": 120.3, "hits": 0, "misses": 9},
      {"shard": "2/2", "wall_ms": 118.9, "hits": 0, "misses": 9}
    ],
    "cold": {"hits": 0, "misses": 18},
    "warm": {"hits": 18, "misses": 0}
  }
}"#;

    #[test]
    fn parses_the_writer_format() {
        let cases = parse_baseline(SAMPLE).unwrap();
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].id, "simcore/Matrix/STS");
        assert_eq!(cases[0].engine, "decoded");
        assert_eq!(cases[0].mean_ns, 1609547);
        assert_eq!(cases[0].cycles_per_run, 1598);
        assert_eq!(cases[0].sim_cycles_per_sec, 992826.0);
        assert_eq!(cases[1].id, "simcore/Matrix/Coupled");
        assert_eq!(cases[2].engine, "scan");
    }

    #[test]
    fn v3_documents_without_engine_default_to_decoded() {
        let doc = SAMPLE.replace("\"engine\": \"decoded\", ", "");
        let cases = parse_baseline(&doc).unwrap();
        assert_eq!(cases[0].engine, "decoded");
        assert_eq!(cases[1].engine, "decoded");
        assert_eq!(cases[2].engine, "scan", "explicit field still wins");
    }

    #[test]
    fn parses_the_sweep_block() {
        let s = parse_sweep_stats(SAMPLE).unwrap();
        assert_eq!(s.jobs, 4);
        assert_eq!(s.cells, 18);
        assert_eq!(s.serial_ms, 470.5);
        assert_eq!(s.parallel_ms, Some(232.1));
        assert_eq!(s.speedup, Some(2.03));
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[0].shard, "1/2");
        assert_eq!(s.shards[0].wall_ms, 120.3);
        assert_eq!(s.shards[1].misses, 9);
        assert_eq!(s.cold, (0, 18));
        assert_eq!(s.warm, (18, 0), "warm pass must record zero misses");
    }

    #[test]
    fn sweep_block_tolerates_single_cpu_hosts() {
        // On a 1-CPU host the writer omits parallel_ms/speedup rather
        // than record a fictitious comparison.
        let doc = SAMPLE
            .replace("    \"parallel_ms\": 232.1,\n", "")
            .replace("    \"speedup\": 2.03,\n", "");
        let s = parse_sweep_stats(&doc).unwrap();
        assert_eq!(s.parallel_ms, None);
        assert_eq!(s.speedup, None);
        assert_eq!(s.cold, (0, 18));
    }

    #[test]
    fn sweep_block_errors_are_described() {
        assert!(parse_sweep_stats("{}")
            .unwrap_err()
            .contains("table2_sweep"));
        let doc = SAMPLE.replace("\"cold\"", "\"chilly\"");
        assert!(parse_sweep_stats(&doc).unwrap_err().contains("cold"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{"cases": []}"#).is_err());
        assert!(parse_baseline(r#"{"cases": [{"mean_ns": 1}]}"#).is_err());
    }

    #[test]
    fn flags_only_regressions_beyond_the_limit() {
        let base = parse_baseline(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur[0].sim_cycles_per_sec *= 0.80; // -20%: inside a 25% limit
        cur[1].sim_cycles_per_sec *= 0.50; // -50%: out
        let fails = regressions(&base, &cur, 25.0);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("Matrix/Coupled"), "{}", fails[0]);
        assert!(fails[0].contains("50.0% regression"), "{}", fails[0]);
    }

    #[test]
    fn floors_flag_cases_below_the_minimum() {
        let cases = parse_baseline(SAMPLE).unwrap();
        // Matrix/Coupled sits at 123036 in the fixture.
        let floors = vec![("/Coupled".to_string(), 200_000.0)];
        let fails = floor_violations(&cases, &floors);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("Matrix/Coupled"), "{}", fails[0]);
        assert!(fails[0].contains("below floor 200000"), "{}", fails[0]);
        let ok = floor_violations(&cases, &[("/Coupled".to_string(), 100_000.0)]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn floors_match_by_suffix_and_reject_unmatched_patterns() {
        let mut cases = parse_baseline(SAMPLE).unwrap();
        cases.push(BaselineCase {
            id: "simcore/Matrix/Coupled/profiled".to_string(),
            engine: "decoded".to_string(),
            mean_ns: 1,
            cycles_per_run: 1,
            sim_cycles_per_sec: 1.0, // far below any floor
        });
        // `/Coupled` must not catch the `/profiled` derived id.
        let fails = floor_violations(&cases, &[("/Coupled".to_string(), 100_000.0)]);
        assert!(fails.is_empty(), "{fails:?}");
        // An unmatched pattern is an error, not a silent pass.
        let fails = floor_violations(&cases, &[("/NoSuchMode".to_string(), 1.0)]);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("no case matches"), "{}", fails[0]);
    }

    #[test]
    fn improvements_and_missing_cases_pass() {
        let base = parse_baseline(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur[0].sim_cycles_per_sec *= 3.0; // faster is never a failure
        cur.remove(1); // case missing from current: skipped
        assert!(regressions(&base, &cur, 25.0).is_empty());
    }
}
