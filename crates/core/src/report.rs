//! Plain-text table formatting for the experiment harness, in the layout
//! of the paper's tables.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells already formatted).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with two decimals (the paper's utilization format).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders the stall-attribution table of a profiled run (see
/// [`pc_sim::RunStats::stalls`]): one row per thread with its busy and
/// per-cause stalled cycles, a totals row, and — when any stall was tied
/// to a specific unit class — a per-class breakdown. Returns a notice
/// string when the run was not profiled.
pub fn stall_report(stats: &pc_sim::RunStats) -> String {
    use pc_sim::StallCause;
    if stats.stalls.is_empty() {
        return "stall attribution: not recorded (run with profiling enabled)".to_string();
    }
    let mut header: Vec<&str> = vec!["thread", "alive", "busy"];
    header.extend(StallCause::ALL.iter().map(|c| c.label()));
    header.push("busy%");
    let mut t = Table::new(
        format!("Stall attribution ({} machine cycles)", stats.cycles),
        &header,
    );
    let fill = |row: &mut Vec<String>, alive: u64, busy: u64, cause: &dyn Fn(StallCause) -> u64| {
        row.push(alive.to_string());
        row.push(busy.to_string());
        for c in StallCause::ALL {
            row.push(cause(c).to_string());
        }
        row.push(f2(100.0 * busy as f64 / alive.max(1) as f64));
    };
    for (i, th) in stats.stalls.threads.iter().enumerate() {
        let mut row = vec![format!("t{i}")];
        fill(&mut row, th.alive, th.busy, &|c| th.cause(c));
        t.row(row);
    }
    let mut total = vec!["all".to_string()];
    fill(
        &mut total,
        stats.stalls.total_alive(),
        stats.stalls.total_busy(),
        &|c| stats.stalls.total_cause(c),
    );
    t.row(total);
    let mut s = t.render();
    if !stats.stalls.by_class.is_empty() {
        let mut header: Vec<&str> = vec!["class"];
        header.extend(StallCause::ALL.iter().map(|c| c.label()));
        let mut ct = Table::new("Stalled slots by unit class", &header);
        for (class, by_cause) in &stats.stalls.by_class {
            let mut row = vec![class.label().to_string()];
            row.extend(by_cause.iter().map(u64::to_string));
            ct.row(row);
        }
        s.push('\n');
        s.push_str(&ct.render());
    }
    s
}

/// Counters of one source line after joining dynamic events against a
/// [`pc_isa::DebugMap`]. Line 0 is the explicit "no provenance" bucket:
/// control bubbles, compiler glue, and programs built without debug info
/// all land there rather than disappearing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineStats {
    /// 1-based source line (0 = no provenance).
    pub line: u32,
    /// Innermost enclosing source loop label (e.g. `i@12`), when known.
    pub loop_label: Option<String>,
    /// Operations issued from slots attributed to this line.
    pub issued: u64,
    /// Stalled cycles whose blocked slot attributes to this line,
    /// indexed by [`pc_sim::StallCause::index`].
    pub by_cause: [u64; pc_sim::StallCause::COUNT],
}

impl LineStats {
    /// Total stalled cycles attributed to the line.
    pub fn stalled(&self) -> u64 {
        self.by_cause.iter().sum()
    }
}

/// Per-loop rollup: every line inside the loop aggregated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Loop label (`i@12`, `while@7`); `-` for code outside any loop.
    pub label: String,
    /// Operations issued from the loop's lines.
    pub issued: u64,
    /// Stalled cycles by cause.
    pub by_cause: [u64; pc_sim::StallCause::COUNT],
}

impl LoopStats {
    /// Total stalled cycles attributed to the loop.
    pub fn stalled(&self) -> u64 {
        self.by_cause.iter().sum()
    }
}

/// The structured join of a profiled run against its debug map:
/// per-source-line and per-loop issue/stall counters. Totals are
/// conserved — every stalled cycle in [`pc_sim::StallTable`] lands on
/// exactly one line (possibly line 0, "no provenance"), so
/// [`SourceTable::total_stalled`] equals the machine-level stall total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceTable {
    /// Per-line counters, ascending by line; line 0 (no provenance) last.
    pub lines: Vec<LineStats>,
    /// Per-loop rollups, in loop-table order; code outside loops last.
    pub loops: Vec<LoopStats>,
}

impl SourceTable {
    /// Total stalled cycles across all lines (== the stall-table total).
    pub fn total_stalled(&self) -> u64 {
        self.lines.iter().map(LineStats::stalled).sum()
    }

    /// Total issued operations across all lines.
    pub fn total_issued(&self) -> u64 {
        self.lines.iter().map(|l| l.issued).sum()
    }

    /// The entry for a line, if present.
    pub fn line(&self, line: u32) -> Option<&LineStats> {
        self.lines.iter().find(|l| l.line == line)
    }
}

/// Joins a profiled run's per-slot counters against the compiler's debug
/// map, attributing each static slot to its *primary* span (smallest
/// span id — earliest program order) so every counter lands on exactly
/// one source line. Slots without provenance and stalls without a
/// blocked slot fall into the line-0 "no provenance" bucket.
pub fn source_table(stats: &pc_sim::RunStats, debug: &pc_isa::DebugMap) -> SourceTable {
    use std::collections::BTreeMap;
    let n = pc_sim::StallCause::COUNT;
    // line → (loop label, issued, by_cause)
    let mut lines: BTreeMap<u32, LineStats> = BTreeMap::new();
    // loop label (None = outside) → rollup, keyed by loop id for order.
    let mut loops: BTreeMap<Option<u32>, LoopStats> = BTreeMap::new();

    // Resolve a static coordinate to (line, loop id) via the primary span.
    let resolve = |seg: u32, row: u32, slot: u16| -> (u32, Option<u32>) {
        debug
            .lookup(pc_isa::SegmentId(seg), row, slot)
            .and_then(|ids| {
                let id = *ids.iter().min()?;
                let info = debug.spans.get(id as usize)?;
                Some((info.span.line, info.loop_id))
            })
            .unwrap_or((0, None))
    };
    let mut bump = |line: u32, loop_id: Option<u32>, issued: u64, by_cause: Option<&[u64]>| {
        let e = lines.entry(line).or_insert_with(|| LineStats {
            line,
            ..LineStats::default()
        });
        if e.loop_label.is_none() {
            if let Some(l) = loop_id {
                e.loop_label = debug.loops.get(l as usize).map(pc_isa::LoopInfo::label);
            }
        }
        e.issued += issued;
        let key = if line == 0 { None } else { loop_id };
        let le = loops.entry(key).or_insert_with(|| LoopStats {
            label: key
                .and_then(|l| debug.loops.get(l as usize).map(pc_isa::LoopInfo::label))
                .unwrap_or_else(|| "-".to_string()),
            ..LoopStats::default()
        });
        le.issued += issued;
        if let Some(bc) = by_cause {
            for (i, &c) in bc.iter().enumerate().take(n) {
                e.by_cause[i] += c;
                le.by_cause[i] += c;
            }
        }
    };

    for (&(seg, row, slot), &count) in &stats.stalls.issued_by_slot {
        let (line, loop_id) = resolve(seg, row, slot);
        bump(line, loop_id, count, None);
    }
    for (&(seg, row, slot), by_cause) in &stats.stalls.by_slot {
        let (line, loop_id) = resolve(seg, row, slot);
        bump(line, loop_id, 0, Some(by_cause));
    }
    bump(0, None, 0, Some(&stats.stalls.unattributed));

    // Ascending lines with the no-provenance bucket (line 0) last; drop
    // it entirely when empty.
    let mut out: Vec<LineStats> = lines.into_values().collect();
    out.sort_by_key(|l| if l.line == 0 { u32::MAX } else { l.line });
    out.retain(|l| l.issued > 0 || l.stalled() > 0);
    let mut loop_rows: Vec<(Option<u32>, LoopStats)> = loops.into_iter().collect();
    loop_rows.sort_by_key(|(k, _)| k.map(|v| v as u64).unwrap_or(u64::MAX));
    SourceTable {
        lines: out,
        loops: loop_rows
            .into_iter()
            .map(|(_, v)| v)
            .filter(|l| l.issued > 0 || l.stalled() > 0)
            .collect(),
    }
}

/// Extracts 1-based line `n` of `src`, trimmed and clipped for table
/// cells.
fn src_line(src: Option<&str>, n: u32) -> String {
    let Some(src) = src else {
        return String::new();
    };
    if n == 0 {
        return String::new();
    }
    let text = src.lines().nth(n as usize - 1).map(str::trim).unwrap_or("");
    let mut s: String = text.chars().take(36).collect();
    if text.chars().count() > 36 {
        s.push('…');
    }
    s
}

/// Renders the per-source-line stall attribution of a profiled run — the
/// source-level version of [`stall_report`] — followed by the per-loop
/// rollup with arbitration-loss and presence-wait shares. `src` (the
/// program text) adds a source-excerpt column when available. Returns a
/// notice when the run was not profiled, and reports every counter that
/// lacks provenance under an explicit "(no provenance)" row.
pub fn source_report(
    stats: &pc_sim::RunStats,
    debug: &pc_isa::DebugMap,
    src: Option<&str>,
) -> String {
    use pc_sim::StallCause;
    if stats.stalls.is_empty() {
        return "source attribution: not recorded (run with profiling enabled)".to_string();
    }
    let table = source_table(stats, debug);
    let mut header: Vec<&str> = vec!["line", "loop", "issued"];
    header.extend(StallCause::ALL.iter().map(|c| c.label()));
    header.push("stalled");
    if src.is_some() {
        header.push("source");
    }
    let mut t = Table::new(
        format!("Source-line stall attribution ({} cycles)", stats.cycles),
        &header,
    );
    for l in &table.lines {
        let mut row = vec![
            if l.line == 0 {
                "(no provenance)".to_string()
            } else {
                l.line.to_string()
            },
            l.loop_label.clone().unwrap_or_else(|| "-".to_string()),
            l.issued.to_string(),
        ];
        row.extend(l.by_cause.iter().map(u64::to_string));
        row.push(l.stalled().to_string());
        if src.is_some() {
            row.push(src_line(src, l.line));
        }
        t.row(row);
    }
    let mut totals = vec![
        "all".to_string(),
        String::new(),
        table.total_issued().to_string(),
    ];
    for c in StallCause::ALL {
        totals.push(
            table
                .lines
                .iter()
                .map(|l| l.by_cause[c.index()])
                .sum::<u64>()
                .to_string(),
        );
    }
    totals.push(table.total_stalled().to_string());
    t.row(totals);
    let mut s = t.render();

    if !table.loops.is_empty() {
        let mut lt = Table::new(
            "Loop rollup",
            &["loop", "issued", "stalled", "lost-arb%", "presence%"],
        );
        for l in &table.loops {
            let stalled = l.stalled();
            let share = |c: StallCause| {
                if stalled == 0 {
                    "0.00".to_string()
                } else {
                    f2(100.0 * l.by_cause[c.index()] as f64 / stalled as f64)
                }
            };
            lt.row(vec![
                l.label.clone(),
                l.issued.to_string(),
                stalled.to_string(),
                share(StallCause::LostArbitration),
                share(StallCause::OperandNotPresent),
            ]);
        }
        s.push('\n');
        s.push_str(&lt.render());
    }
    s
}

/// Side-by-side per-line diff of two modes' source tables — the per-line
/// version of the paper's Table 4. Lines are joined by source line
/// number (the two modes may compile different source *variants* of a
/// benchmark; the join is then positional per variant and labelled as
/// such by the caller). The delta column is `b − a` stalled cycles.
pub fn source_diff(
    label_a: &str,
    a: &SourceTable,
    label_b: &str,
    b: &SourceTable,
    src_a: Option<&str>,
) -> String {
    use std::collections::BTreeSet;
    let keys: BTreeSet<u32> = a
        .lines
        .iter()
        .chain(b.lines.iter())
        .map(|l| l.line)
        .collect();
    let mut t = Table::new(
        format!("Per-line mode diff: {label_a} vs {label_b}"),
        &[
            "line",
            &format!("{label_a}:issued"),
            &format!("{label_a}:stalled"),
            &format!("{label_b}:issued"),
            &format!("{label_b}:stalled"),
            "Δstalled",
            "source",
        ],
    );
    // Real lines ascending, the no-provenance bucket last.
    let mut ordered: Vec<u32> = keys.into_iter().collect();
    ordered.sort_by_key(|&l| if l == 0 { u32::MAX } else { l });
    for line in ordered {
        let la = a.line(line);
        let lb = b.line(line);
        let stat = |l: Option<&LineStats>| {
            (
                l.map(|x| x.issued).unwrap_or(0),
                l.map(LineStats::stalled).unwrap_or(0),
            )
        };
        let (ia, sa) = stat(la);
        let (ib, sb) = stat(lb);
        let delta = sb as i64 - sa as i64;
        t.row(vec![
            if line == 0 {
                "(no provenance)".to_string()
            } else {
                line.to_string()
            },
            ia.to_string(),
            sa.to_string(),
            ib.to_string(),
            sb.to_string(),
            format!("{delta:+}"),
            src_line(src_a, line),
        ]);
    }
    let total = |x: &SourceTable| (x.total_issued(), x.total_stalled());
    let (tia, tsa) = total(a);
    let (tib, tsb) = total(b);
    t.row(vec![
        "all".to_string(),
        tia.to_string(),
        tsa.to_string(),
        tib.to_string(),
        tsb.to_string(),
        format!("{:+}", tsb as i64 - tsa as i64),
        String::new(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Benchmark", "Cycles"]);
        t.row(vec!["Matrix".into(), "1992".into()]);
        t.row(vec!["FFT".into(), "33".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Benchmark"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned numbers line up.
        assert!(lines[3].ends_with("1992"));
        assert!(lines[4].ends_with("33"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(2.158), "2.16");
        assert_eq!(f2(0.0), "0.00");
    }

    #[test]
    fn stall_report_renders_threads_totals_and_classes() {
        use pc_isa::UnitClass;
        use pc_sim::StallCause;
        let mut stats = pc_sim::RunStats {
            cycles: 10,
            ..Default::default()
        };
        stats.stalls.record_busy(0);
        stats
            .stalls
            .record_stall(0, StallCause::LostArbitration, Some(UnitClass::Integer));
        stats.stalls.record_stall(1, StallCause::EmptyRow, None);
        let s = stall_report(&stats);
        assert!(s.contains("t0"), "{s}");
        assert!(s.contains("t1"));
        assert!(s.contains("all"));
        assert!(s.contains("lost-arb"));
        assert!(s.contains("empty-row"));
        assert!(s.contains("Stalled slots by unit class"));
        assert!(s.contains("IU"));
    }

    #[test]
    fn stall_report_notes_unprofiled_runs() {
        let s = stall_report(&pc_sim::RunStats::default());
        assert!(s.contains("not recorded"));
    }

    /// A two-line, one-loop debug map with counters on both lines plus
    /// one unattributable stall.
    fn source_fixture() -> (pc_sim::RunStats, pc_isa::DebugMap) {
        use pc_isa::UnitClass;
        use pc_sim::StallCause;
        let mut debug = pc_isa::DebugMap::new();
        debug.loops.push(pc_isa::LoopInfo {
            name: "i".into(),
            line: 3,
        });
        debug.spans.push(pc_isa::SpanInfo {
            span: pc_isa::SrcSpan { line: 3, col: 2 },
            loop_id: Some(0),
        });
        debug.spans.push(pc_isa::SpanInfo {
            span: pc_isa::SrcSpan { line: 7, col: 1 },
            loop_id: None,
        });
        let mut sd = pc_isa::SegmentDebug::default();
        sd.record(0, 0, vec![0]); // line 3, in loop i@3
        sd.record(1, 0, vec![1, 0]); // primary = span 0 → line 3
        sd.record(2, 1, vec![1]); // line 7, outside any loop
        debug.segments.push(sd);

        let mut stats = pc_sim::RunStats {
            cycles: 100,
            ops_issued: 12,
            ..Default::default()
        };
        for _ in 0..8 {
            stats.stalls.record_issue_at(0, 0, 0);
        }
        for _ in 0..4 {
            stats.stalls.record_issue_at(0, 2, 1);
        }
        for _ in 0..5 {
            stats.stalls.record_stall_at(
                0,
                StallCause::LostArbitration,
                Some(UnitClass::Integer),
                Some((0, 1, 0)),
            );
        }
        stats.stalls.record_stall_at(
            0,
            StallCause::MemoryBusy,
            Some(UnitClass::Memory),
            Some((0, 2, 1)),
        );
        stats
            .stalls
            .record_stall_at(1, StallCause::EmptyRow, None, None);
        (stats, debug)
    }

    #[test]
    fn source_table_joins_and_conserves() {
        use pc_sim::StallCause;
        let (stats, debug) = source_fixture();
        let t = source_table(&stats, &debug);
        assert_eq!(t.total_issued(), 12);
        assert_eq!(t.total_stalled(), 7);
        let l3 = t.line(3).unwrap();
        assert_eq!(l3.issued, 8);
        assert_eq!(l3.by_cause[StallCause::LostArbitration.index()], 5);
        assert_eq!(l3.loop_label.as_deref(), Some("i@3"));
        let l7 = t.line(7).unwrap();
        assert_eq!(l7.issued, 4);
        assert_eq!(l7.by_cause[StallCause::MemoryBusy.index()], 1);
        // The control bubble lands in the explicit no-provenance bucket.
        let bucket = t.line(0).unwrap();
        assert_eq!(bucket.by_cause[StallCause::EmptyRow.index()], 1);
        // Loop rollup: loop i@3 and the outside-any-loop row.
        assert_eq!(t.loops.len(), 2);
        assert_eq!(t.loops[0].label, "i@3");
        assert_eq!(t.loops[0].stalled(), 5);
        assert_eq!(t.loops[1].label, "-");
    }

    #[test]
    fn source_report_renders_lines_loops_and_fallbacks() {
        let (stats, debug) = source_fixture();
        let s = source_report(&stats, &debug, Some("a\nb\nloop line\n"));
        assert!(s.contains("Source-line stall attribution"), "{s}");
        assert!(s.contains("(no provenance)"), "{s}");
        assert!(s.contains("i@3"), "{s}");
        assert!(s.contains("loop line"), "source excerpt missing:\n{s}");
        assert!(s.contains("Loop rollup"), "{s}");
        assert!(s.contains("100.00"), "lost-arb share missing:\n{s}");
        // Unprofiled runs say so instead of printing an empty table.
        let none = source_report(&pc_sim::RunStats::default(), &debug, None);
        assert!(none.contains("not recorded"), "{none}");
    }

    #[test]
    fn source_diff_shows_per_line_deltas() {
        let (stats, debug) = source_fixture();
        let a = source_table(&stats, &debug);
        let mut b = a.clone();
        b.lines[0].by_cause[0] += 3; // line 3 gains 3 stalls in mode B
        let s = source_diff("SEQ", &a, "Coupled", &b, None);
        assert!(s.contains("Per-line mode diff: SEQ vs Coupled"), "{s}");
        assert!(s.contains("SEQ:stalled"), "{s}");
        assert!(s.contains("+3"), "{s}");
        assert!(s.contains("+0"), "{s}");
        // Totals row carries the aggregate delta.
        let last = s.lines().last().unwrap();
        assert!(last.contains("all"), "{s}");
    }
}
