//! # pc-isa — ISA and machine model for the processor-coupling reproduction
//!
//! This crate defines the instruction-set architecture and machine
//! description shared by every other crate in the workspace: the compiler
//! (`pc-compiler`) emits [`Program`]s of wide instruction words, the
//! simulator (`pc-sim`) executes them against a [`MachineConfig`], and the
//! assembler (`pc-asm`) prints and parses them.
//!
//! The model follows Keckler & Dally, *Processor Coupling: Integrating
//! Compile Time and Runtime Scheduling for Parallelism* (ISCA 1992):
//!
//! * A node is a collection of **clusters**, each grouping a few
//!   **function units** (integer, floating-point, memory, branch) around a
//!   shared multi-ported register file ([`MachineConfig`]).
//! * A thread's code is a sparse matrix of **operations**: each
//!   [`InstWord`] (row) holds at most one [`Operation`] per function unit,
//!   and rows issue in order with intra-row slip.
//! * Operations name up to `max_dsts` **destination registers** which may
//!   live in *other* clusters' register files — this is the coupling
//!   mechanism by which units place results directly into each other's
//!   register files.
//! * Memory references carry the **synchronizing flavors** of the paper's
//!   Table 1 ([`LoadFlavor`], [`StoreFlavor`]).
//!
//! The crate also centralizes **operation semantics** ([`op::eval_int`],
//! [`op::eval_float`]) so the compiler's constant folder, the reference
//! interpreter and the simulator all agree exactly.
//!
//! ```
//! use pc_isa::{MachineConfig, UnitClass};
//!
//! let mc = MachineConfig::baseline();
//! assert_eq!(mc.clusters().len(), 6); // 4 arithmetic + 2 branch clusters
//! assert_eq!(mc.units_of_class(UnitClass::Float).count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod debug;
pub mod error;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;
pub mod validate;
pub mod value;

pub use config::{
    ArbitrationPolicy, ClusterConfig, FuId, FuInfo, InterconnectScheme, MachineConfig, MemoryModel,
    UnitClass, UnitConfig,
};
pub use debug::{DebugMap, LoopInfo, SegmentDebug, SpanInfo, SrcSpan};
pub use error::{IsaError, Result};
pub use inst::InstWord;
pub use op::{
    eval_alu, BranchOp, FloatOp, IntOp, LoadFlavor, MemOp, OpKind, OpTag, Operation, StoreFlavor,
};
pub use program::{CodeSegment, Program, SegmentId, Symbol};
pub use reg::{ClusterId, Operand, RegId};
pub use validate::validate_program;
pub use value::Value;
