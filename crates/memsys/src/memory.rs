//! The word array with per-location full/empty bits.

use pc_isa::Value;
use std::fmt;

/// Hard ceiling on the simulated address space (words); catches wild
/// addresses produced by buggy programs instead of exhausting host memory.
pub const MAX_WORDS: u64 = 1 << 24;

/// Errors raised by memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address exceeds [`MAX_WORDS`].
    OutOfBounds {
        /// The offending word address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr } => {
                write!(
                    f,
                    "address {addr} exceeds simulated memory ({MAX_WORDS} words)"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Word-addressed memory with a presence (full/empty) bit per location.
///
/// The array grows on demand up to [`MAX_WORDS`]; fresh locations read as
/// `Int(0)` and are born **full** (plain data "just works"; synchronization
/// cells are explicitly emptied with [`Memory::set_empty`]).
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: Vec<Value>,
    full: Vec<bool>,
}

impl Memory {
    /// Creates a memory pre-sized to `size` words.
    pub fn with_size(size: u64) -> Self {
        let n = size.min(MAX_WORDS) as usize;
        Memory {
            words: vec![Value::Int(0); n],
            full: vec![true; n],
        }
    }

    fn ensure(&mut self, addr: u64) -> Result<usize, MemError> {
        if addr >= MAX_WORDS {
            return Err(MemError::OutOfBounds { addr });
        }
        let i = addr as usize;
        if i >= self.words.len() {
            self.words.resize(i + 1, Value::Int(0));
            self.full.resize(i + 1, true);
        }
        Ok(i)
    }

    /// Reads the value at `addr` (fresh locations read `Int(0)`).
    ///
    /// # Errors
    /// [`MemError::OutOfBounds`] beyond [`MAX_WORDS`].
    pub fn read(&mut self, addr: u64) -> Result<Value, MemError> {
        let i = self.ensure(addr)?;
        Ok(self.words[i])
    }

    /// Writes `value` at `addr` without touching the presence bit.
    ///
    /// # Errors
    /// [`MemError::OutOfBounds`] beyond [`MAX_WORDS`].
    pub fn write(&mut self, addr: u64, value: Value) -> Result<(), MemError> {
        let i = self.ensure(addr)?;
        self.words[i] = value;
        Ok(())
    }

    /// The presence bit at `addr` (fresh locations are full).
    ///
    /// # Errors
    /// [`MemError::OutOfBounds`] beyond [`MAX_WORDS`].
    pub fn is_full(&mut self, addr: u64) -> Result<bool, MemError> {
        let i = self.ensure(addr)?;
        Ok(self.full[i])
    }

    /// Sets the presence bit.
    ///
    /// # Errors
    /// [`MemError::OutOfBounds`] beyond [`MAX_WORDS`].
    pub fn set_full_bit(&mut self, addr: u64, full: bool) -> Result<(), MemError> {
        let i = self.ensure(addr)?;
        self.full[i] = full;
        Ok(())
    }

    /// Marks `[addr, addr+len)` empty — used to initialize synchronization
    /// cells (flags, produced-once slots).
    ///
    /// # Errors
    /// [`MemError::OutOfBounds`] beyond [`MAX_WORDS`].
    pub fn set_empty(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        for a in addr..addr + len {
            self.set_full_bit(a, false)?;
        }
        Ok(())
    }

    /// Number of words currently materialized.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no word has been materialized.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero_and_full() {
        let mut m = Memory::default();
        assert_eq!(m.read(100).unwrap(), Value::Int(0));
        assert!(m.is_full(100).unwrap());
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::with_size(8);
        m.write(3, Value::Float(2.5)).unwrap();
        assert_eq!(m.read(3).unwrap(), Value::Float(2.5));
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn presence_bits_are_independent_of_values() {
        let mut m = Memory::default();
        m.write(5, Value::Int(9)).unwrap();
        m.set_full_bit(5, false).unwrap();
        assert_eq!(m.read(5).unwrap(), Value::Int(9));
        assert!(!m.is_full(5).unwrap());
    }

    #[test]
    fn set_empty_range() {
        let mut m = Memory::default();
        m.set_empty(10, 4).unwrap();
        for a in 10..14 {
            assert!(!m.is_full(a).unwrap());
        }
        assert!(m.is_full(14).unwrap());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Memory::default();
        let err = m.read(MAX_WORDS).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
        assert!(err.to_string().contains("exceeds"));
        assert!(m.write(u64::MAX, Value::Int(0)).is_err());
    }

    #[test]
    fn with_size_caps_at_max() {
        let m = Memory::with_size(4);
        assert!(!m.is_empty());
        assert_eq!(m.len(), 4);
    }
}
